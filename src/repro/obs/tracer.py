"""Span/event tracing keyed on virtual time.

The tracer records a **causal trace** per logical update: every stage an
update passes through -- ``writepage``, commit-queue enqueue, dedup
merge, compound assembly, the commit RPC, MDS handling, disk dispatch --
emits a :class:`Span` (an interval) or a :class:`TraceEvent` (an
instant), all tagged with the originating update ids.  Stages are
correlated by *update id*: :meth:`Tracer.new_update` hands out one id per
logical update (one ``write`` call), and every downstream hook carries
the ids of the updates it is working for.

Design constraints
------------------
*Zero perturbation*: recording only appends to Python lists; it never
schedules events, consumes RNG draws, or mutates simulation state, so a
traced run is event-for-event identical to an untraced one (enforced by
``tests/obs/test_trace_determinism.py``).

*Zero dependencies*: the tracer knows nothing about the file-system
model; components push spans into it through the hooks in
:mod:`repro.obs.instrument`.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass, field

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Environment


@dataclass
class Span:
    """One interval of work attributed to a node/actor pair.

    ``end`` is ``None`` while the span is open; :meth:`Tracer.end` closes
    it.  ``update_ids`` names the logical updates this work was done for
    (several, when dedup or compounding batched updates together).
    """

    span_id: int
    name: str
    cat: str
    start: float
    node: str = ""
    actor: str = ""
    parent_id: _t.Optional[int] = None
    end: _t.Optional[float] = None
    update_ids: _t.Tuple[int, ...] = ()
    args: _t.Dict[str, _t.Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        if self.end is None:
            return 0.0
        return self.end - self.start

    @property
    def finished(self) -> bool:
        return self.end is not None


@dataclass
class TraceEvent:
    """One instantaneous occurrence (a dedup merge, a degree change)."""

    name: str
    cat: str
    time: float
    node: str = ""
    actor: str = ""
    update_ids: _t.Tuple[int, ...] = ()
    args: _t.Dict[str, _t.Any] = field(default_factory=dict)


class Tracer:
    """Accumulates spans and instant events against the virtual clock.

    The tracer is bound to an :class:`Environment` by :meth:`attach`
    (clusters do this in their constructor); until then the clock reads
    zero, which only matters for unit tests that drive the tracer
    directly.
    """

    def __init__(self, env: _t.Optional["Environment"] = None) -> None:
        self._env = env
        self.spans: _t.List[Span] = []
        self.events: _t.List[TraceEvent] = []
        self._next_span_id = 1
        self._next_update_id = 1

    def attach(self, env: "Environment") -> None:
        """Bind the tracer to the environment whose clock stamps spans."""
        self._env = env

    @property
    def now(self) -> float:
        return self._env.now if self._env is not None else 0.0

    # -- ids ---------------------------------------------------------------

    def new_update(self) -> int:
        """Allocate the id of one logical update (one write call)."""
        uid = self._next_update_id
        self._next_update_id += 1
        return uid

    # -- recording ---------------------------------------------------------

    def begin(
        self,
        name: str,
        cat: str,
        *,
        node: str = "",
        actor: str = "",
        parent: _t.Optional[int] = None,
        update_ids: _t.Tuple[int, ...] = (),
        **args: _t.Any,
    ) -> Span:
        """Open a span starting now; close it with :meth:`end`."""
        span = Span(
            span_id=self._next_span_id,
            name=name,
            cat=cat,
            start=self.now,
            node=node,
            actor=actor,
            parent_id=parent,
            update_ids=tuple(update_ids),
            args=dict(args),
        )
        self._next_span_id += 1
        self.spans.append(span)
        return span

    def end(self, span: Span, **args: _t.Any) -> Span:
        """Close ``span`` at the current virtual time."""
        span.end = self.now
        if args:
            span.args.update(args)
        return span

    def instant(
        self,
        name: str,
        cat: str,
        *,
        node: str = "",
        actor: str = "",
        update_ids: _t.Tuple[int, ...] = (),
        **args: _t.Any,
    ) -> TraceEvent:
        """Record an instantaneous event at the current virtual time."""
        event = TraceEvent(
            name=name,
            cat=cat,
            time=self.now,
            node=node,
            actor=actor,
            update_ids=tuple(update_ids),
            args=dict(args),
        )
        self.events.append(event)
        return event

    # -- views -------------------------------------------------------------

    def finished_spans(self) -> _t.List[Span]:
        return [span for span in self.spans if span.finished]

    def spans_named(self, name: str) -> _t.List[Span]:
        return [span for span in self.spans if span.name == name]

    def events_named(self, name: str) -> _t.List[TraceEvent]:
        return [event for event in self.events if event.name == name]

    def __len__(self) -> int:
        return len(self.spans) + len(self.events)


#: The stage names of a delayed-commit update's causal chain, in order.
#: ``commit_merge`` is optional (only deduped updates have it); the rest
#: form the enqueue -> ... -> dispatch chain every update must complete.
CHAIN_STAGES: _t.Tuple[str, ...] = (
    "commit_queued",
    "compound_assembly",
    "rpc:commit",
    "mds_handle",
    "disk_dispatch",
)


#: Canonical protocol state-transition points, ``name -> how it is
#: observed``: a ``span``/``instant`` is matched against trace names, a
#: ``counter`` against the metric registry.  This is the crash-schedule
#: checker's coverage universe (``repro.check.transitions``): every name
#: here is a place the cluster's protocol state machine advances, and a
#: crash is worth scheduling just after each.  Keep in sync with the
#: emitting sites when adding instrumentation.
TRANSITION_POINTS: _t.Tuple[_t.Tuple[str, str], ...] = (
    ("writepage", "span"),            # client data write issued
    ("commit_queued", "span"),        # commit-queue enqueue
    ("commit_merge", "instant"),      # dedup merge into resident record
    ("commit_checkout", "instant"),   # stable records leave the queue
    ("compound_assembly", "instant"),  # compound RPC dispatch
    ("rpc:commit", "span"),           # commit RPC send
    ("mds_handle", "span"),           # MDS receive/handle
    ("commit_apply", "instant"),      # namespace mutation applied
    ("journal_write", "instant"),     # dedup-table journal write
    ("disk_dispatch", "span"),        # block request reaches a spindle
    ("delegation_grant", "instant"),  # space delegation granted
    ("lease_renew", "counter"),       # lease renewed by client RPC
    ("lease_reclaim", "instant"),     # lease GC reclaims orphan space
)


def update_stages(tracer: Tracer) -> _t.Dict[int, _t.Set[str]]:
    """Map each update id to the set of stage names it passed through."""
    stages: _t.Dict[int, _t.Set[str]] = {}
    for span in tracer.spans:
        for uid in span.update_ids:
            stages.setdefault(uid, set()).add(span.name)
    for event in tracer.events:
        for uid in event.update_ids:
            stages.setdefault(uid, set()).add(event.name)
    return stages


def complete_chains(
    tracer: Tracer, require_merge: bool = False
) -> _t.List[int]:
    """Update ids whose causal chain is complete (enqueue -> dispatch).

    With ``require_merge`` the update must additionally have been
    dedup-merged into a resident commit record (``commit_merge``) --
    the full enqueue -> merge -> compound -> commit -> dispatch chain of
    the paper's delayed-commit fast path.
    """
    required = set(CHAIN_STAGES)
    if require_merge:
        required.add("commit_merge")
    return sorted(
        uid
        for uid, seen in update_stages(tracer).items()
        if required <= seen
    )
