"""Observability: causal tracing and the unified metrics/event layer.

``repro.obs`` gives the reproduction the accounting the paper's argument
rests on -- *where an update spends its life*: on the application's
critical path (synchronous commit) or inside the background machinery
(delayed commit).  It provides

- a zero-dependency span/event :class:`~repro.obs.tracer.Tracer` keyed
  on virtual time, producing one causal trace per logical update
  (``writepage -> enqueue -> merge -> compound -> commit RPC -> MDS ->
  disk dispatch``);
- a :class:`~repro.obs.registry.MetricsRegistry` of counters, gauges,
  and histograms that all components publish into;
- exporters: JSONL, Chrome ``trace_event`` JSON (Perfetto-loadable), and
  plain-text summaries (:mod:`repro.obs.export`).

Observability is **off by default**: clusters built without an
:class:`Instrumentation` object run the untraced fast path, and a traced
run is event-for-event identical to an untraced one (the hooks only
record; they never schedule events or consume RNG draws).
"""

from repro.obs.export import (
    load_chrome_trace,
    read_jsonl,
    stats_table,
    to_chrome_trace,
    to_jsonl_records,
    trace_summary,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.instrument import (
    EngineProbe,
    Instrumentation,
    register_redbud_gauges,
)
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.slo import (
    STAGES,
    SloResult,
    SloRule,
    SloSpec,
    Timeline,
    TimelineWindow,
    UpdateBreakdown,
    critical_path_table,
    decompose_updates,
    excused_histogram,
    slo_table,
    timeline_counter_events,
)
from repro.obs.tracer import (
    CHAIN_STAGES,
    Span,
    TraceEvent,
    Tracer,
    complete_chains,
    update_stages,
)

__all__ = [
    "CHAIN_STAGES",
    "STAGES",
    "Counter",
    "EngineProbe",
    "Gauge",
    "Histogram",
    "Instrumentation",
    "MetricsRegistry",
    "SloResult",
    "SloRule",
    "SloSpec",
    "Span",
    "Timeline",
    "TimelineWindow",
    "TraceEvent",
    "Tracer",
    "UpdateBreakdown",
    "complete_chains",
    "critical_path_table",
    "decompose_updates",
    "excused_histogram",
    "load_chrome_trace",
    "read_jsonl",
    "register_redbud_gauges",
    "slo_table",
    "stats_table",
    "timeline_counter_events",
    "to_chrome_trace",
    "to_jsonl_records",
    "trace_summary",
    "update_stages",
    "write_chrome_trace",
    "write_jsonl",
]
