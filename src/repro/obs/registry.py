"""Counter/gauge/histogram registry all components publish into.

One :class:`MetricsRegistry` exists per instrumented cluster.  Components
*push* counters and histogram observations as they work (commit RPCs
sent, compound degrees used); the cluster assembly *registers* pull
gauges over live component state (queue depths, utilisations, hit
rates), so a snapshot taken at any virtual time reads the whole system
at once.  ``python -m repro stats`` prints :meth:`MetricsRegistry.rows`.

Metrics are plain Python objects: no background sampling processes, no
locks, no effect on simulation ordering.
"""

from __future__ import annotations

import typing as _t


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount

    def read(self) -> float:
        return self.value


class Gauge:
    """A point-in-time value: either set directly or pulled via ``fn``."""

    __slots__ = ("name", "fn", "_value")

    def __init__(
        self, name: str, fn: _t.Optional[_t.Callable[[], float]] = None
    ) -> None:
        self.name = name
        self.fn = fn
        self._value = 0.0

    def set(self, value: float) -> None:
        if self.fn is not None:
            raise ValueError(f"gauge {self.name} is pull-based")
        self._value = value

    def read(self) -> float:
        if self.fn is not None:
            return float(self.fn())
        return self._value


class Histogram:
    """Summary of observed values: count, sum, min, max, mean.

    Additionally keeps exact counts for small non-negative integer
    observations (compound degrees, queue depths) in ``int_counts`` --
    the Fig. 7 degree histogram without a binning policy to argue about.
    """

    __slots__ = ("name", "count", "total", "min", "max", "int_counts")

    #: Integer observations up to this value are counted exactly.
    _INT_LIMIT = 1024

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: _t.Optional[float] = None
        self.max: _t.Optional[float] = None
        self.int_counts: _t.Dict[int, int] = {}

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if (
            isinstance(value, int)
            or float(value).is_integer()
        ) and 0 <= value <= self._INT_LIMIT:
            key = int(value)
            self.int_counts[key] = self.int_counts.get(key, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> _t.Dict[str, float]:
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
        }


Metric = _t.Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Named metrics, created on first use and snapshotted on demand."""

    def __init__(self) -> None:
        self._metrics: _t.Dict[str, Metric] = {}

    def _get_or_create(
        self, name: str, kind: _t.Type[Metric], **kwargs: _t.Any
    ) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = kind(name, **kwargs)
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(
        self, name: str, fn: _t.Optional[_t.Callable[[], float]] = None
    ) -> Gauge:
        gauge = self._get_or_create(name, Gauge)
        if fn is not None:
            gauge.fn = fn
        return gauge

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> _t.List[str]:
        return sorted(self._metrics)

    # -- snapshots ---------------------------------------------------------

    def snapshot(self) -> _t.Dict[str, _t.Any]:
        """All metrics as plain values (histograms as summary dicts)."""
        out: _t.Dict[str, _t.Any] = {}
        for name in self.names():
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                out[name] = metric.summary()
            else:
                out[name] = metric.read()
        return out

    def rows(self) -> _t.List[_t.Tuple[str, str, _t.Any]]:
        """(name, kind, value) rows for the ``stats`` table."""
        rows: _t.List[_t.Tuple[str, str, _t.Any]] = []
        for name in self.names():
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                value: _t.Any = (
                    f"n={metric.count} mean={metric.mean:.4g} "
                    f"min={metric.min or 0:.4g} max={metric.max or 0:.4g}"
                )
                rows.append((name, "histogram", value))
            elif isinstance(metric, Counter):
                rows.append((name, "counter", metric.read()))
            else:
                rows.append((name, "gauge", metric.read()))
        return rows
