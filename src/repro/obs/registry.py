"""Counter/gauge/histogram registry all components publish into.

One :class:`MetricsRegistry` exists per instrumented cluster.  Components
*push* counters and histogram observations as they work (commit RPCs
sent, compound degrees used); the cluster assembly *registers* pull
gauges over live component state (queue depths, utilisations, hit
rates), so a snapshot taken at any virtual time reads the whole system
at once.  ``python -m repro stats`` prints :meth:`MetricsRegistry.rows`.

Metrics are plain Python objects: no background sampling processes, no
locks, no effect on simulation ordering.
"""

from __future__ import annotations

import math
import typing as _t


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount

    def read(self) -> float:
        return self.value


class Gauge:
    """A point-in-time value: either set directly or pulled via ``fn``."""

    __slots__ = ("name", "fn", "_value")

    def __init__(
        self, name: str, fn: _t.Optional[_t.Callable[[], float]] = None
    ) -> None:
        self.name = name
        self.fn = fn
        self._value = 0.0

    def set(self, value: float) -> None:
        if self.fn is not None:
            raise ValueError(f"gauge {self.name} is pull-based")
        self._value = value

    def read(self) -> float:
        if self.fn is not None:
            return float(self.fn())
        return self._value


class Histogram:
    """Bounded-memory summary of observed values with tail quantiles.

    Beyond count/sum/min/max, every observation lands in a log-spaced
    (HDR-style) bucket: bucket ``i`` covers ``[GROWTH**i, GROWTH**(i+1))``
    and a quantile is reported at the geometric midpoint of its bucket,
    so any estimate is within ``sqrt(GROWTH) - 1`` (< 1%) of the exact
    order statistic at that rank -- with O(buckets) memory however long
    the run.  Bucket counts merge associatively across histograms
    (:meth:`merge_from`), which is what lets per-shard and per-window
    histograms aggregate without re-observing samples.

    Additionally keeps exact counts for small non-negative integer
    observations (compound degrees, queue depths) in ``int_counts`` --
    the Fig. 7 degree histogram without a binning policy to argue about.
    ``bool`` observations are excluded from ``int_counts``: ``True`` is
    an ``int`` to ``isinstance``, but counting it under key ``1`` would
    pollute the exact-integer histogram.
    """

    __slots__ = (
        "name", "count", "total", "min", "max", "int_counts",
        "zero_count", "buckets",
    )

    #: Integer observations up to this value are counted exactly.
    _INT_LIMIT = 1024
    #: Log-bucket growth factor.  Each bucket spans a 2% value range;
    #: reporting a quantile at the bucket's geometric midpoint bounds
    #: the relative error at sqrt(GROWTH) - 1 ~= 0.995%.
    GROWTH = 1.02
    _LOG_GROWTH = math.log(GROWTH)
    #: Observations below this magnitude count as exact zeros (the
    #: log-bucket index would otherwise diverge).  Virtual-time
    #: latencies of cache hits really are 0.0.
    TINY = 1e-12

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: _t.Optional[float] = None
        self.max: _t.Optional[float] = None
        self.int_counts: _t.Dict[int, int] = {}
        #: Observations in [0, TINY) -- an exact "zero" bucket.
        self.zero_count = 0
        #: Log-bucket index -> count of observations in that bucket.
        self.buckets: _t.Dict[int, int] = {}

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if value < self.TINY:
            # Negative values never occur for latencies; they fold into
            # the zero bucket so quantile ranks stay consistent with
            # ``count`` either way.
            self.zero_count += 1
        else:
            idx = math.floor(math.log(value) / self._LOG_GROWTH)
            self.buckets[idx] = self.buckets.get(idx, 0) + 1
        if (
            not isinstance(value, bool)
            and (isinstance(value, int) or float(value).is_integer())
            and 0 <= value <= self._INT_LIMIT
        ):
            key = int(value)
            self.int_counts[key] = self.int_counts.get(key, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (0 <= q <= 1) from the buckets.

        Returns the geometric midpoint of the bucket holding the
        ``ceil(q * count)``-th smallest observation, clamped to the
        observed [min, max] range; exact for the zero bucket and for
        q=0/q=1 (min/max are tracked exactly).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        if q == 0.0:
            return float(self.min)
        if q == 1.0:
            return float(self.max)
        rank = max(1, math.ceil(q * self.count))
        if rank <= self.zero_count:
            return 0.0
        remaining = rank - self.zero_count
        for idx in sorted(self.buckets):
            bucket_count = self.buckets[idx]
            if remaining <= bucket_count:
                estimate = math.exp((idx + 0.5) * self._LOG_GROWTH)
                return min(max(estimate, float(self.min)), float(self.max))
            remaining -= bucket_count
        return float(self.max)

    def merge_from(self, other: "Histogram") -> None:
        """Fold another histogram's state into this one (associative)."""
        self.count += other.count
        self.total += other.total
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max
        self.zero_count += other.zero_count
        for idx, n in other.buckets.items():
            self.buckets[idx] = self.buckets.get(idx, 0) + n
        for key, n in other.int_counts.items():
            self.int_counts[key] = self.int_counts.get(key, 0) + n

    def summary(self) -> _t.Dict[str, float]:
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
            "p999": self.quantile(0.999),
        }


Metric = _t.Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Named metrics, created on first use and snapshotted on demand."""

    def __init__(self) -> None:
        self._metrics: _t.Dict[str, Metric] = {}

    def _get_or_create(
        self, name: str, kind: _t.Type[Metric], **kwargs: _t.Any
    ) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = kind(name, **kwargs)
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(
        self, name: str, fn: _t.Optional[_t.Callable[[], float]] = None
    ) -> Gauge:
        gauge = self._get_or_create(name, Gauge)
        if fn is not None:
            gauge.fn = fn
        return gauge

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)

    def adopt(self, metric: Metric) -> Metric:
        """Register an externally-owned metric object under its name.

        Lets a component publish a histogram it maintains anyway (e.g. a
        metadata shard's service-time histogram) without double
        bookkeeping.  Re-adopting the same object is a no-op; a name
        collision with a different object raises.
        """
        existing = self._metrics.get(metric.name)
        if existing is metric:
            return metric
        if existing is not None:
            raise ValueError(
                f"metric {metric.name!r} already registered"
            )
        self._metrics[metric.name] = metric
        return metric

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> _t.List[str]:
        return sorted(self._metrics)

    # -- snapshots ---------------------------------------------------------

    def snapshot(self) -> _t.Dict[str, _t.Any]:
        """All metrics as plain values (histograms as summary dicts)."""
        out: _t.Dict[str, _t.Any] = {}
        for name in self.names():
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                out[name] = metric.summary()
            else:
                out[name] = metric.read()
        return out

    def rows(self) -> _t.List[_t.Tuple[str, str, _t.Any]]:
        """(name, kind, value) rows for the ``stats`` table."""
        rows: _t.List[_t.Tuple[str, str, _t.Any]] = []
        for name in self.names():
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                value: _t.Any = (
                    f"n={metric.count} mean={metric.mean:.4g} "
                    f"p50={metric.quantile(0.5):.4g} "
                    f"p99={metric.quantile(0.99):.4g} "
                    f"min={metric.min or 0:.4g} max={metric.max or 0:.4g}"
                )
                rows.append((name, "histogram", value))
            elif isinstance(metric, Counter):
                rows.append((name, "counter", metric.read()))
            else:
                rows.append((name, "gauge", metric.read()))
        return rows
