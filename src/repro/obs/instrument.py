"""Wiring: one object carrying the tracer, registry, and engine probe.

An :class:`Instrumentation` instance is created by the caller (CLI, test)
and handed to a cluster constructor; the cluster attaches it to its
environment and passes it down to every component.  Components hold an
``obs`` reference that is ``None`` when observability is off -- every
hook site is guarded by ``if obs is not None``, so the untraced fast
path costs one attribute load and the traced path only appends to lists
(no events scheduled, no RNG consumed, no ordering perturbed).
"""

from __future__ import annotations

import typing as _t

from repro.obs.registry import MetricsRegistry
from repro.obs.tracer import Tracer

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Environment


class EngineProbe:
    """Event-loop statistics: calendar depth and event sojourn time.

    The engine calls :meth:`on_step` for every event it pops (only when
    a probe is installed).  *Lag* is how long the entry sat on the
    calendar between scheduling and firing -- the virtual-time analogue
    of event-loop lag.
    """

    __slots__ = ("steps", "total_lag", "max_lag", "max_depth")

    def __init__(self) -> None:
        self.steps = 0
        self.total_lag = 0.0
        self.max_lag = 0.0
        self.max_depth = 0

    def on_step(self, lag: float, depth: int) -> None:
        self.steps += 1
        self.total_lag += lag
        if lag > self.max_lag:
            self.max_lag = lag
        if depth > self.max_depth:
            self.max_depth = depth

    @property
    def mean_lag(self) -> float:
        return self.total_lag / self.steps if self.steps else 0.0


class Instrumentation:
    """The observability bundle: tracer + metrics registry + probe."""

    def __init__(self) -> None:
        self.tracer = Tracer()
        self.registry = MetricsRegistry()
        self.probe = EngineProbe()
        self._env: _t.Optional["Environment"] = None

    def attach(self, env: "Environment") -> None:
        """Bind to a cluster's environment (done by cluster ctors)."""
        self._env = env
        self.tracer.attach(env)
        env.probe = self.probe
        reg = self.registry
        reg.gauge("sim.events_processed", lambda: self.probe.steps)
        reg.gauge("sim.calendar.max_depth", lambda: self.probe.max_depth)
        reg.gauge("sim.event_lag.mean", lambda: self.probe.mean_lag)
        reg.gauge("sim.event_lag.max", lambda: self.probe.max_lag)
        reg.gauge("sim.now", lambda: env.now)


def register_redbud_gauges(obs: Instrumentation, cluster: _t.Any) -> None:
    """Register pull gauges over a RedbudCluster's live component state.

    Called by ``RedbudCluster.__init__`` when built with instrumentation;
    replaces the previous pattern of each experiment reaching into
    component-private dicts.  Metric names are documented in README.md
    ("Observability").
    """
    reg = obs.registry
    clients = cluster.clients

    # NB: truthiness won't do here -- CommitQueue defines __len__, so an
    # empty (drained) queue is falsy and would be silently skipped.
    queues = lambda: (  # noqa: E731
        c.commit_queue for c in clients if c.commit_queue is not None
    )
    reg.gauge(
        "commit_queue.depth", lambda: sum(len(q) for q in queues())
    )
    reg.gauge(
        "commit_queue.inserts", lambda: sum(q.inserts for q in queues())
    )
    reg.gauge(
        "commit_queue.dedup_hits",
        lambda: sum(q.dedup_hits for q in queues()),
    )
    reg.gauge(
        "commit_queue.peak_depth",
        lambda: max((q.peak_length for q in queues()), default=0),
    )
    reg.gauge(
        "commit.pool.threads",
        lambda: sum(
            c.thread_pool.thread_count
            for c in clients
            if c.thread_pool is not None
        ),
    )
    reg.gauge(
        "compound.degree.mean",
        lambda: _mean(
            c.compound.degree for c in clients if c.compound is not None
        ),
    )
    reg.gauge(
        "elevator.depth",
        lambda: sum(len(c.blockdev.scheduler) for c in clients),
    )
    reg.gauge(
        "elevator.merges",
        lambda: sum(c.blockdev.scheduler.stats.merges for c in clients),
    )
    reg.gauge(
        "elevator.merge_ratio",
        lambda: _aggregate_merge_ratio(clients),
    )
    reg.gauge(
        "delegation.local_allocs",
        lambda: sum(c.space_local_allocs for c in clients),
    )
    reg.gauge(
        "delegation.rpc_allocs",
        lambda: sum(c.space_rpc_allocs for c in clients),
    )
    reg.gauge("delegation.hit_rate", lambda: _lease_hit_rate(clients))
    # Aggregated across metadata shards (a single MDS is one shard).
    metadata = cluster.metadata
    reg.gauge("mds.queue_depth", lambda: metadata.queue_length)
    reg.gauge("mds.utilization", lambda: metadata.utilization)
    reg.gauge(
        "mds.requests_processed", lambda: metadata.requests_processed
    )
    reg.gauge("mds.ops_processed", lambda: metadata.ops_processed)
    if metadata.num_shards > 1:
        for k, server in enumerate(metadata):
            reg.gauge(
                f"mds.shard{k}.requests_processed",
                lambda s=server: s.requests_processed,
            )
            reg.gauge(
                f"mds.shard{k}.ops_processed",
                lambda s=server: s.ops_processed,
            )
            server.service_hist.name = f"mds.shard{k}.service_time"
            reg.adopt(server.service_hist)
    else:
        reg.adopt(metadata.shard(0).service_hist)
    reg.gauge("array.utilization", lambda: cluster.array.utilization)
    reg.gauge("array.ops_served", lambda: cluster.array.ops_served)
    reg.gauge("array.bytes_served", lambda: cluster.array.bytes_served)
    group = getattr(cluster, "group", None)
    if group is not None:
        reg.gauge("storage.group.members", lambda g=group: g.size)
        reg.gauge(
            "storage.group.alive", lambda g=group: g.alive_count
        )
        reg.gauge(
            "storage.group.losses", lambda g=group: g.losses
        )
        reg.gauge(
            "storage.group.replicated_bytes",
            lambda g=group: g.replicated_bytes,
        )
        reg.gauge(
            "storage.group.resilvered_bytes",
            lambda g=group: g.resilvered_bytes,
        )
    witnesses = getattr(cluster, "witnesses", None)
    if witnesses is not None:
        reg.gauge(
            "curp.fast_commits", lambda w=witnesses: w.fast_commits
        )
        reg.gauge(
            "curp.fallback_conflict",
            lambda w=witnesses: w.fallback_conflict,
        )
        reg.gauge(
            "curp.fallback_overflow",
            lambda w=witnesses: w.fallback_overflow,
        )
        reg.gauge("curp.outstanding", lambda w=witnesses: len(w))


def _mean(values: _t.Iterable[float]) -> float:
    items = list(values)
    return sum(items) / len(items) if items else 0.0


def _aggregate_merge_ratio(clients: _t.Sequence[_t.Any]) -> float:
    dispatched = sum(
        c.blockdev.scheduler.stats.dispatched for c in clients
    )
    submissions = sum(
        c.blockdev.scheduler.stats.dispatched_submissions for c in clients
    )
    return submissions / dispatched if dispatched else 1.0


def _lease_hit_rate(clients: _t.Sequence[_t.Any]) -> float:
    local = sum(c.space_local_allocs for c in clients)
    remote = sum(c.space_rpc_allocs for c in clients)
    total = local + remote
    return local / total if total else 0.0
