"""NFS3 baseline (Fig. 3).

Architectural contrasts with Redbud that the model captures (§V.C):

- **one server does everything**: all data *and* metadata flow over the
  server's single Ethernet NIC (a shared link pair), and all disk I/O
  goes through the server's own disk -- the central bottleneck for large
  files;
- **no distributed updates**: a write is one WRITE RPC; the server
  buffers it in memory and replies immediately (the unstable write of
  the NFSv3 protocol), so small-file writes are fast -- this is why NFS3
  beats original Redbud on the 32 KB xcdn test;
- **COMMIT on demand**: fsync sends a COMMIT; the server then flushes the
  file's dirty pages, allocating disk space with a simple sequential
  cursor -- a single writer, so its disk pattern is naturally mergeable;
- a periodic write-back daemon bounds server memory.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass

from repro.client.filesystem import FileSystemAPI
from repro.fs.base import BaseCluster
from repro.fs.config import ClusterConfig
from repro.net.link import Link
from repro.net.messages import RpcMessage
from repro.net.rpc import RpcClient, RpcServerPort, RpcTransport
from repro.sim import Environment
from repro.storage.blockdev import BlockDevice
from repro.storage.cache import PageCache
from repro.storage.disk import DiskArray, DiskParameters
from repro.util.intervals import IntervalSet

#: Server memory copy bandwidth (buffering a WRITE), bytes/second.
MEMORY_BANDWIDTH = 2e9


# -- NFS3 payloads -------------------------------------------------------------


@dataclass
class NfsCreate:
    name: str


@dataclass
class NfsWrite:
    file_id: int
    offset: int
    length: int
    #: Place this file's data at an aged-namespace (random) position.
    scattered: bool = False


@dataclass
class NfsCommit:
    file_id: int


@dataclass
class NfsRead:
    file_id: int
    offset: int
    length: int


@dataclass
class NfsGetattr:
    file_id: int


@dataclass
class NfsUnlink:
    file_id: int


@dataclass
class _NfsFile:
    file_id: int
    name: str
    size: int = 0


class Nfs3Server:
    """The central NFS server: namespace + buffer cache + local disk."""

    def __init__(
        self,
        env: Environment,
        disk: DiskParameters,
        port: RpcServerPort,
        downlink: Link,
        rng,
        num_daemons: int = 8,
        svc_message: float = 60e-6,
        flush_interval: float = 0.25,
        dirty_limit: int = 256 * 1024 * 1024,
    ) -> None:
        self.env = env
        self.rng = rng
        #: Memory-pressure bound: past this many dirty bytes, WRITE
        #: handlers flush synchronously before replying (the NFS server
        #: forcing stable writes under pressure).
        self.dirty_limit = dirty_limit
        self.port = port
        self.downlink = downlink
        self.svc_message = svc_message
        self.array = DiskArray(env, disk, rng)
        self.blockdev = BlockDevice(env, 0, self.array)
        self.cache = PageCache(capacity=None)  # big server buffer cache
        self._files: _t.Dict[int, _NfsFile] = {}
        self._by_name: _t.Dict[str, int] = {}
        self._extents: _t.Dict[int, _t.List[_t.Tuple[int, int, int]]] = {}
        self._dirty: _t.Dict[int, IntervalSet] = {}
        self._scattered_files: _t.Set[int] = set()
        self._next_id = 1
        # Reserve a journal region at the front of the volume; data
        # allocation bumps sequentially after it.
        self.volume_size = disk.volume_size
        self._journal_region = max(4096, self.volume_size // 256)
        self._journal_slot = 0
        self._cursor = self._journal_region
        self.requests_processed = 0
        for i in range(num_daemons):
            env.process(self._daemon(), name=f"nfsd-{i}")
        env.process(self._flusher(flush_interval), name="nfs-flusher")

    # -- request service -----------------------------------------------------------

    def _daemon(self) -> _t.Generator:
        while True:
            message: RpcMessage = yield self.port.next_request()
            payload = message.payload
            service = self.svc_message
            if message.data_bytes:
                service += message.data_bytes / MEMORY_BANDWIDTH
            yield self.env.timeout(service)

            if isinstance(payload, NfsCreate):
                result = self._create(payload.name)
            elif isinstance(payload, NfsWrite):
                result = self._write(payload)
                # Memory pressure: force-stabilise the oldest dirty file
                # until the buffer shrinks below the limit.
                while (
                    self.cache.dirty_bytes > self.dirty_limit and self._dirty
                ):
                    victim = next(iter(self._dirty))
                    yield from self._flush_file(victim, sync=True)
                    if not self._dirty.get(victim):
                        self._dirty.pop(victim, None)
            elif isinstance(payload, NfsCommit):
                yield from self._flush_file(payload.file_id, sync=True)
                # A COMMIT is a durability barrier: the server's local
                # file system forces its metadata journal too, costing a
                # scattered small write (the real NFS3 fsync tax).
                yield self.blockdev.submit_write(
                    self._next_journal_slot(), 4096, file_id=0, sync=True
                )
                result = True
            elif isinstance(payload, NfsRead):
                result = yield from self._read(payload, message)
            elif isinstance(payload, NfsGetattr):
                result = self._files.get(payload.file_id)
            elif isinstance(payload, NfsUnlink):
                result = self._unlink(payload.file_id)
            else:
                raise TypeError(f"unknown NFS payload {payload!r}")

            self.requests_processed += 1
            self.port.reply(message, result, self.downlink)

    def _create(self, name: str) -> int:
        if name in self._by_name:
            return self._by_name[name]
        file = _NfsFile(file_id=self._next_id, name=name)
        self._next_id += 1
        self._files[file.file_id] = file
        self._by_name[name] = file.file_id
        return file.file_id

    def _write(self, p: NfsWrite) -> bool:
        self.cache.write(p.file_id, p.offset, p.length)
        if p.scattered:
            self._scattered_files.add(p.file_id)
        self._dirty.setdefault(p.file_id, IntervalSet()).add(
            p.offset, p.offset + p.length
        )
        file = self._files.get(p.file_id)
        if file is not None:
            file.size = max(file.size, p.offset + p.length)
        return True

    def _flush_file(self, file_id: int, sync: bool = False) -> _t.Generator:
        dirty = self._dirty.get(file_id)
        if not dirty:
            return
        ranges = list(dirty)
        dirty.clear()
        events = []
        scattered = file_id in self._scattered_files
        for start, end in ranges:
            length = end - start
            vol = self._alloc(length, scattered=scattered)
            self._extents.setdefault(file_id, []).append(
                (start, vol, length)
            )
            events.append(
                self.blockdev.submit_write(vol, length, file_id, sync=sync)
            )
        for ev in events:
            yield ev
        for start, end in ranges:
            self.cache.mark_clean(file_id, start, end - start)

    def _alloc(self, length: int, scattered: bool = False) -> int:
        if scattered:
            # Aged-namespace placement: the upper half of the volume,
            # well clear of the sequential bump region.
            half = self.volume_size // 2
            return half + self.rng.integers(0, half - length)
        if self._cursor + length > self.volume_size // 2:
            self._cursor = self._journal_region  # wrap past the journal
        offset = self._cursor
        self._cursor += length
        return offset

    def _next_journal_slot(self) -> int:
        self._journal_slot = (self._journal_slot + 4096) % (
            self._journal_region - 4096
        )
        return self._journal_slot

    def _read(
        self, p: NfsRead, message: RpcMessage
    ) -> _t.Generator:
        if not self.cache.read_hit(p.file_id, p.offset, p.length):
            events = []
            for f_off, vol, length in self._extents.get(p.file_id, ()):
                if f_off < p.offset + p.length and f_off + length > p.offset:
                    events.append(
                        self.blockdev.submit_read(vol, length, p.file_id)
                    )
            for ev in events:
                yield ev
            self.cache.fill(p.file_id, p.offset, p.length)
        message.reply_data_bytes = p.length
        return True

    def _unlink(self, file_id: int) -> bool:
        file = self._files.pop(file_id, None)
        if file is not None:
            self._by_name.pop(file.name, None)
        self._extents.pop(file_id, None)
        self._dirty.pop(file_id, None)
        self.cache.drop_file(file_id)
        return True

    def _flusher(self, interval: float) -> _t.Generator:
        while True:
            yield self.env.timeout(interval)
            for file_id in [fid for fid, d in self._dirty.items() if d]:
                yield from self._flush_file(file_id)


class Nfs3Client(FileSystemAPI):
    """Client stub: local cache plus RPCs over the shared server NIC."""

    def __init__(
        self,
        env: Environment,
        client_id: int,
        rpc: RpcClient,
        cache_capacity: _t.Optional[int],
    ) -> None:
        self.env = env
        self.client_id = client_id
        self.rpc = rpc
        self.cache = PageCache(capacity=cache_capacity)

    def create(self, name: str) -> _t.Generator:
        file_id = yield self.rpc.call("create", NfsCreate(name=name))
        return file_id

    def write(
        self,
        file_id: int,
        offset: int,
        length: int,
        scattered: bool = False,
    ) -> _t.Generator:
        self.cache.write(file_id, offset, length)
        yield self.rpc.call(
            "write",
            NfsWrite(
                file_id=file_id,
                offset=offset,
                length=length,
                scattered=scattered,
            ),
            data_bytes=length,
        )
        # Server holds the data now; the client copy is effectively clean.
        self.cache.mark_clean(file_id, offset, length)
        return None

    def read(self, file_id: int, offset: int, length: int) -> _t.Generator:
        if self.cache.read_hit(file_id, offset, length):
            return True
        yield self.rpc.call(
            "read",
            NfsRead(file_id=file_id, offset=offset, length=length),
            reply_data_bytes=length,
        )
        self.cache.fill(file_id, offset, length)
        return True

    def fsync(self, file_id: int) -> _t.Generator:
        yield self.rpc.call("commit", NfsCommit(file_id=file_id))
        return None

    def close(self, file_id: int, sync: bool = False) -> _t.Generator:
        if sync:
            yield from self.fsync(file_id)
        return None

    def unlink(self, file_id: int) -> _t.Generator:
        yield self.rpc.call("unlink", NfsUnlink(file_id=file_id))
        self.cache.drop_file(file_id)
        return None

    def stat(self, file_id: int) -> _t.Generator:
        meta = yield self.rpc.call("getattr", NfsGetattr(file_id=file_id))
        return meta


class Nfs3Cluster(BaseCluster):
    """N clients sharing one NFS server over its single NIC."""

    system_name = "nfs3"

    def __init__(
        self,
        config: ClusterConfig,
        seed: int = 0,
        obs: _t.Optional[_t.Any] = None,
    ) -> None:
        super().__init__(
            Environment(scheduler=config.scheduler), seed=seed, obs=obs
        )
        self.config = config
        env = self.env

        self.port = RpcServerPort(env)
        # The server's NIC: every client shares this link pair.
        self.server_uplink = Link(
            env,
            bandwidth=config.link.bandwidth,
            propagation=config.link.propagation,
            per_message_overhead=config.link.per_message_overhead,
            name="nfs-nic-rx",
        )
        self.server_downlink = Link(
            env,
            bandwidth=config.link.bandwidth,
            propagation=config.link.propagation,
            per_message_overhead=config.link.per_message_overhead,
            name="nfs-nic-tx",
        )
        self.server = Nfs3Server(
            env,
            config.disk,
            self.port,
            self.server_downlink,
            self.root_rng.stream("nfs-disk"),
            num_daemons=config.mds.num_daemons,
        )
        self.clients = [
            Nfs3Client(
                env,
                cid,
                RpcClient(
                    env,
                    cid,
                    RpcTransport(
                        env, self.server_uplink, self.server_downlink,
                        self.port,
                    ),
                    obs=obs,
                ),
                cache_capacity=config.client_cache_capacity,
            )
            for cid in range(config.client_nodes)
        ]

    @property
    def num_clients(self) -> int:
        return self.config.num_clients

    def client_fs(self, index: int) -> Nfs3Client:
        return self.clients[index]

    def apply_cache_recommendation(self, capacity: int) -> None:
        for client in self.clients:
            client.cache.capacity = capacity
        # The server is a single node fronting everyone's namespace; its
        # buffer cache is larger than one client's but nowhere near the
        # pooled total (it shares memory with the NFS daemons and the OS).
        self.server.cache.capacity = capacity * 2

    def collect_extras(self) -> _t.Dict[str, _t.Any]:
        return {
            "server_requests": self.server.requests_processed,
            "server_nic_bytes": (
                self.server_uplink.stats.bytes
                + self.server_downlink.stats.bytes
            ),
            "server_disk_utilization": self.server.array.utilization,
        }
