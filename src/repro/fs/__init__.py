"""Whole-cluster assemblies: Redbud and the two baselines.

- :class:`ClusterConfig` -- every hardware and protocol parameter in one
  dataclass, with paper-calibrated defaults.
- :class:`RedbudCluster` -- the Redbud parallel file system (Fig. 2) in
  any commit mode, with or without space delegation.
- :class:`Nfs3Cluster` -- the NFS3 baseline: one server owns all data and
  metadata; clients ship data over Ethernet; server-side write-back with
  WRITE/COMMIT semantics.
- :class:`Pvfs2Cluster` -- the PVFS2 baseline: striped data servers, no
  client cache, synchronous write-through; strong at MPI-style large
  parallel I/O, weak at small-file updates.
- :func:`build_cluster` -- factory mapping a system name to an assembly.
"""

from repro.fs.config import ClusterConfig
from repro.fs.nfs3 import Nfs3Cluster
from repro.fs.pvfs2 import Pvfs2Cluster
from repro.fs.redbud import RedbudCluster, RunResult
from repro.fs.factory import build_cluster

__all__ = [
    "ClusterConfig",
    "Nfs3Cluster",
    "Pvfs2Cluster",
    "RedbudCluster",
    "RunResult",
    "build_cluster",
]
