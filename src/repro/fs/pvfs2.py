"""PVFS2 baseline (Fig. 3).

Architectural contrasts with Redbud that the model captures:

- **no client cache**: PVFS2 famously does not cache file data on
  clients, so every read crosses the network and every write is shipped
  immediately;
- **write-through data servers**: a write RPC completes only after the
  data server has put the data on its local disk -- no delayed anything,
  which is why PVFS2 trails Redbud on small-file updates;
- **striping for parallel I/O**: files are striped across all data
  servers in ``stripe_size`` units and a large write fans out to every
  server in parallel.  Combined with one disk *per server* (aggregate
  bandwidth ~N disks versus Redbud's single shared array), this is the
  MPI-IO strength that lets PVFS2 win the NPB experiment, matching the
  paper ("PVFS2 has been optimized for MPI-IO").
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass

from repro.client.filesystem import FileSystemAPI
from repro.fs.base import BaseCluster
from repro.fs.config import ClusterConfig
from repro.net.link import Link
from repro.net.messages import RpcMessage
from repro.net.rpc import RpcClient, RpcServerPort, RpcTransport
from repro.sim import Environment
from repro.storage.blockdev import BlockDevice
from repro.storage.cache import PageCache
from repro.storage.disk import DiskArray, DiskParameters


@dataclass
class PvfsCreate:
    name: str


@dataclass
class PvfsIo:
    file_id: int
    offset: int
    length: int
    #: Place this chunk at an aged-namespace (random) position.
    scattered: bool = False


@dataclass
class PvfsGetattr:
    file_id: int


@dataclass
class PvfsUnlink:
    file_id: int


class Pvfs2DataServer:
    """One data server: NIC plus a slice of the shared FC array.

    The paper's testbed gives every server direct FC access to the same
    disk array; a PVFS2 data server therefore stores its objects in its
    own partition of that array (write-through -- PVFS2 has no delayed
    anything).  The user-space request path costs more CPU per message
    than the in-kernel Redbud service.
    """

    def __init__(
        self,
        env: Environment,
        server_id: int,
        link_params,
        array: DiskArray,
        partition: _t.Tuple[int, int],
        rng,
        num_daemons: int = 8,
        svc_message: float = 80e-6,
    ) -> None:
        self.env = env
        self.server_id = server_id
        self.rng = rng
        self.svc_message = svc_message
        self.port = RpcServerPort(env)
        self.uplink = Link(
            env,
            bandwidth=link_params.bandwidth,
            propagation=link_params.propagation,
            per_message_overhead=link_params.per_message_overhead,
            name=f"pvfs-rx-{server_id}",
        )
        self.downlink = Link(
            env,
            bandwidth=link_params.bandwidth,
            propagation=link_params.propagation,
            per_message_overhead=link_params.per_message_overhead,
            name=f"pvfs-tx-{server_id}",
        )
        self.array = array
        self.blockdev = BlockDevice(env, server_id, array)
        self.cache = PageCache(capacity=1 * 1024**3)  # server buffer cache
        #: (file_id, chunk_offset) -> volume offset of the stored chunk.
        self._chunks: _t.Dict[_t.Tuple[int, int], _t.Tuple[int, int]] = {}
        self._partition_start, self._partition_size = partition
        # The data partition proper starts after an inode/journal region
        # (the backing local file system's metadata area).
        self._inode_region = self._partition_start
        self._inode_region_size = max(4096, self._partition_size // 64)
        self._cursor = self._partition_start + self._inode_region_size
        self.requests_processed = 0
        for i in range(num_daemons):
            env.process(self._daemon(), name=f"pvfsd-{server_id}-{i}")

    def _daemon(self) -> _t.Generator:
        while True:
            message: RpcMessage = yield self.port.next_request()
            yield self.env.timeout(self.svc_message)
            payload = message.payload
            if isinstance(payload, PvfsIo) and message.kind == "write":
                result = yield from self._write(payload)
            elif isinstance(payload, PvfsIo) and message.kind == "read":
                result = yield from self._read(payload, message)
            else:
                raise TypeError(f"unexpected payload {payload!r}")
            self.requests_processed += 1
            self.port.reply(message, result, self.downlink)

    def _write(self, p: PvfsIo) -> _t.Generator:
        end = self._partition_start + self._partition_size
        if p.scattered:
            # Aged placement in the upper half of the partition.
            half = self._partition_size // 2
            volume = (
                self._partition_start
                + half
                + self.rng.integers(0, max(1, half - p.length))
            )
        else:
            volume = self._cursor
            if volume + p.length > self._partition_start + (
                self._partition_size // 2
            ):
                self._cursor = (
                    self._partition_start + self._inode_region_size
                )
                volume = self._cursor
            self._cursor = volume + p.length
        self._chunks[(p.file_id, p.offset)] = (volume, p.length)
        # Write-through service: the client is blocked on this RPC.
        events = [
            self.blockdev.submit_write(volume, p.length, p.file_id, sync=True)
        ]
        if p.offset == 0:
            # The backing local file system (2012-era ext3) synchronously
            # updates the object's inode/journal in its metadata region --
            # a scattered small write per stored object.  This is the
            # documented small-file weakness of PVFS2 data servers.
            inode_slot = self._inode_region + (
                (p.file_id * 4096) % self._inode_region_size
            )
            events.append(
                self.blockdev.submit_write(
                    inode_slot, 4096, p.file_id, sync=True
                )
            )
        # Write-through: the reply waits for the disk.
        for event in events:
            yield event
        self.cache.write(p.file_id, p.offset, p.length)
        self.cache.mark_clean(p.file_id, p.offset, p.length)
        return True

    def _read(self, p: PvfsIo, message: RpcMessage) -> _t.Generator:
        if not self.cache.read_hit(p.file_id, p.offset, p.length):
            stored = self._chunks.get((p.file_id, p.offset))
            if stored is not None:
                volume, length = stored
                yield self.blockdev.submit_read(volume, length, p.file_id)
                self.cache.fill(p.file_id, p.offset, p.length)
        message.reply_data_bytes = p.length
        return True


class Pvfs2MetaServer:
    """A lightweight PVFS2 metadata service."""

    def __init__(
        self,
        env: Environment,
        link_params,
        num_daemons: int = 4,
        svc_message: float = 60e-6,
    ) -> None:
        self.env = env
        self.svc_message = svc_message
        self.port = RpcServerPort(env)
        self.uplink = Link(env, bandwidth=link_params.bandwidth,
                           propagation=link_params.propagation,
                           name="pvfs-meta-rx")
        self.downlink = Link(env, bandwidth=link_params.bandwidth,
                             propagation=link_params.propagation,
                             name="pvfs-meta-tx")
        self._by_name: _t.Dict[str, int] = {}
        self._sizes: _t.Dict[int, int] = {}
        self._next_id = 1
        for i in range(num_daemons):
            env.process(self._daemon(), name=f"pvfs-meta-{i}")

    def _daemon(self) -> _t.Generator:
        while True:
            message: RpcMessage = yield self.port.next_request()
            yield self.env.timeout(self.svc_message)
            payload = message.payload
            if isinstance(payload, PvfsCreate):
                if payload.name in self._by_name:
                    result = self._by_name[payload.name]
                else:
                    result = self._next_id
                    self._by_name[payload.name] = result
                    self._next_id += 1
            elif isinstance(payload, PvfsGetattr):
                result = self._sizes.get(payload.file_id, 0)
            elif isinstance(payload, PvfsUnlink):
                result = True
            else:
                raise TypeError(f"unexpected payload {payload!r}")
            self.port.reply(message, result, self.downlink)


class Pvfs2Client(FileSystemAPI):
    """Striping client: no cache, parallel chunk fan-out."""

    supports_collective_io = True  # ROMIO collective buffering

    def __init__(
        self,
        env: Environment,
        client_id: int,
        meta_rpc: RpcClient,
        data_rpcs: _t.List[RpcClient],
        stripe_size: int = 64 * 1024,
    ) -> None:
        self.env = env
        self.client_id = client_id
        self.meta_rpc = meta_rpc
        self.data_rpcs = data_rpcs
        self.stripe_size = stripe_size
        # PVFS2 has no client data cache; expose an always-miss stand-in
        # so workload setup code (cache.drop_volatile) works unchanged.
        self.cache = PageCache(capacity=4096)

    def _chunks_of(
        self, file_id: int, offset: int, length: int
    ) -> _t.Iterator[_t.Tuple[int, int, int]]:
        """Yield (server_index, chunk_offset, chunk_length)."""
        n = len(self.data_rpcs)
        cursor = offset
        end = offset + length
        while cursor < end:
            chunk_index = cursor // self.stripe_size
            chunk_start = chunk_index * self.stripe_size
            chunk_len = min(end, chunk_start + self.stripe_size) - cursor
            server = (file_id + chunk_index) % n
            yield server, cursor, chunk_len
            cursor += chunk_len

    def create(self, name: str) -> _t.Generator:
        # PVFS2 file creation is a multi-step metadata protocol (handle
        # allocation, setattr, datafile handles, directory entry -- see
        # Devulapalli & Wyckoff, IPDPS'07): several sequential RPCs.
        file_id = yield self.meta_rpc.call("create", PvfsCreate(name=name))
        yield self.meta_rpc.call("getattr", PvfsGetattr(file_id=file_id))
        yield self.meta_rpc.call("getattr", PvfsGetattr(file_id=file_id))
        return file_id

    def write(
        self,
        file_id: int,
        offset: int,
        length: int,
        scattered: bool = False,
    ) -> _t.Generator:
        events = [
            self.data_rpcs[server].call(
                "write",
                PvfsIo(
                    file_id=file_id,
                    offset=c_off,
                    length=c_len,
                    scattered=scattered,
                ),
                data_bytes=c_len,
            )
            for server, c_off, c_len in self._chunks_of(
                file_id, offset, length
            )
        ]
        # Parallel fan-out: wait for every stripe chunk.
        yield self.env.all_of(events)
        return None

    def read(self, file_id: int, offset: int, length: int) -> _t.Generator:
        events = [
            self.data_rpcs[server].call(
                "read",
                PvfsIo(file_id=file_id, offset=c_off, length=c_len),
                reply_data_bytes=c_len,
            )
            for server, c_off, c_len in self._chunks_of(
                file_id, offset, length
            )
        ]
        yield self.env.all_of(events)
        return True

    def fsync(self, file_id: int) -> _t.Generator:
        return None  # write-through: nothing volatile to flush
        yield  # pragma: no cover

    def close(self, file_id: int, sync: bool = False) -> _t.Generator:
        return None
        yield  # pragma: no cover

    def unlink(self, file_id: int) -> _t.Generator:
        yield self.meta_rpc.call("unlink", PvfsUnlink(file_id=file_id))
        return None

    def stat(self, file_id: int) -> _t.Generator:
        meta = yield self.meta_rpc.call(
            "getattr", PvfsGetattr(file_id=file_id)
        )
        return meta


class Pvfs2Cluster(BaseCluster):
    """N clients, N data servers, one metadata server."""

    system_name = "pvfs2"

    def __init__(
        self,
        config: ClusterConfig,
        seed: int = 0,
        num_data_servers: _t.Optional[int] = None,
        stripe_size: int = 1024 * 1024,
        obs: _t.Optional[_t.Any] = None,
    ) -> None:
        super().__init__(
            Environment(scheduler=config.scheduler), seed=seed, obs=obs
        )
        self.config = config
        env = self.env
        n_servers = num_data_servers or config.client_nodes

        self.meta = Pvfs2MetaServer(env, config.link)
        # All data servers share the testbed's FC disk array, each owning
        # a partition of its address space.
        self.array = DiskArray(
            env, config.disk, self.root_rng.stream("pvfs-disk")
        )
        part_size = config.disk.volume_size // n_servers
        self.servers = [
            Pvfs2DataServer(
                env,
                sid,
                config.link,
                self.array,
                partition=(sid * part_size, part_size),
                rng=self.root_rng.stream("pvfs-alloc", sid),
            )
            for sid in range(n_servers)
        ]
        self.clients = []
        for cid in range(config.client_nodes):
            meta_rpc = RpcClient(
                env,
                cid,
                RpcTransport(
                    env, self.meta.uplink, self.meta.downlink, self.meta.port
                ),
                obs=obs,
            )
            data_rpcs = [
                RpcClient(
                    env,
                    cid,
                    RpcTransport(env, s.uplink, s.downlink, s.port),
                    obs=obs,
                )
                for s in self.servers
            ]
            self.clients.append(
                Pvfs2Client(
                    env, cid, meta_rpc, data_rpcs, stripe_size=stripe_size
                )
            )

    @property
    def num_clients(self) -> int:
        return self.config.num_clients

    def client_fs(self, index: int) -> Pvfs2Client:
        return self.clients[index]

    def apply_cache_recommendation(self, capacity: int) -> None:
        # PVFS2 clients cache nothing; the data servers split the pooled
        # memory the other systems' clients would have had.
        per_server = max(1, capacity * self.num_clients // len(self.servers))
        for server in self.servers:
            server.cache.capacity = per_server

    def collect_extras(self) -> _t.Dict[str, _t.Any]:
        return {
            "data_server_requests": sum(
                s.requests_processed for s in self.servers
            ),
            "array_utilization": self.array.utilization,
        }
