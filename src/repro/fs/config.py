"""Cluster configuration.

One dataclass gathers every knob of the simulated testbed so a benchmark
can describe its setup declaratively.  Defaults approximate the paper's
cluster: 1 MDS + 7 clients, 1 Gbps Ethernet for metadata, a 4 Gb FC disk
array for data, 16 MB delegation chunks, at most 9 commit threads.
"""

from __future__ import annotations

import dataclasses
import typing as _t
from dataclasses import dataclass, field

from repro.core.compound import CompoundPolicy
from repro.core.thread_pool import ThreadPoolPolicy
from repro.mds.server import MdsParameters
from repro.net.rpc import RetryPolicy
from repro.storage.disk import DiskParameters


@dataclass(frozen=True)
class LinkParameters:
    """Ethernet parameters (1 Gbps defaults)."""

    bandwidth: float = 125e6
    propagation: float = 60e-6
    per_message_overhead: int = 78


@dataclass
class ClusterConfig:
    """Complete description of one simulated cluster."""

    #: Logical clients -- workload personalities (the paper uses 7
    #: clients + 1 MDS).
    num_clients: int = 7
    #: Simulated client *node processes* to multiplex those personalities
    #: onto, or ``None`` for one node per client (the legacy layout,
    #: byte-identical to builds without the aggregation machinery).
    #: Setting e.g. ``num_clients=10000, client_processes=16`` gives a
    #: 10k-client population served by 16 aggregate nodes: client count
    #: decouples from process count, which is what makes 10k-client runs
    #: tractable (see ``repro.workloads.aggregate``).
    client_processes: _t.Optional[int] = None
    #: Event-calendar implementation: ``calendar`` (bucketed calendar
    #: queue, the default) or ``heap`` (the reference binary heap).
    #: Both dispatch in the identical total order; the knob exists for
    #: the scheduler-scaling benchmarks and equivalence tests.
    scheduler: str = "calendar"
    #: ``synchronous`` (original Redbud), ``delayed``, or ``unordered``
    #: (the deliberately broken control mode for consistency tests).
    commit_mode: str = "synchronous"
    #: Enable space delegation (§IV.A).
    space_delegation: bool = False
    #: Delegated chunk size; the paper's experiments use 16 MB.
    delegation_chunk: int = 16 * 1024 * 1024
    #: Fixed compound degree (Fig. 7) or None for adaptive (§IV.B).
    fixed_compound_degree: _t.Optional[int] = None
    #: Client page-cache capacity in bytes (None = unbounded).
    client_cache_capacity: _t.Optional[int] = 2 * 1024 * 1024 * 1024
    #: Commit-queue capacity (backpressure bound).
    commit_queue_capacity: int = 4096
    #: Per-client dirty-pages limit (writeback throttling), bytes.  Like
    #: the cache capacities this is scaled down with the benchmark
    #: namespaces, so buffering cannot swallow a whole (scaled) run.
    dirty_limit: int = 16 * 1024 * 1024

    disk: DiskParameters = field(default_factory=DiskParameters)
    link: LinkParameters = field(default_factory=LinkParameters)
    mds: MdsParameters = field(
        default_factory=lambda: MdsParameters(lease_duration=30.0)
    )
    thread_pool: ThreadPoolPolicy = field(default_factory=ThreadPoolPolicy)
    compound: CompoundPolicy = field(default_factory=CompoundPolicy)

    #: RPC timeout/retry policy (fault tolerance).  ``None`` -- the
    #: fault-free default -- disables timeouts entirely; the RPC path is
    #: then event-for-event identical to a build without the fault
    #: machinery.  Required (non-None) when running under a fault spec
    #: that can lose or stall messages.
    retry: _t.Optional[RetryPolicy] = None
    #: Delayed->synchronous degradation: consecutive RPC timeouts before
    #: a client falls back to synchronous ordered writes.  Only armed
    #: when ``retry`` is set.
    degrade_after_timeouts: int = 3
    #: Commit-queue backlog that also triggers the fallback (None =
    #: derive from ``commit_queue_capacity``).
    degrade_backlog: _t.Optional[int] = None

    #: Storage-group replication arrangement for the disk array:
    #: ``none`` (single copy, the default -- byte-identical to a build
    #: without the replication machinery), ``mirror3`` (3-way mirror) or
    #: ``block4-2`` (4+2 Reed-Solomon).  Replicated delayed-commit
    #: clusters also arm the CURP-style 1-RTT witness commit path.
    replication: str = "none"
    #: Per-witness slot budget for unsynced commutative commits; a full
    #: witness forces the ordered fallback path.
    witness_capacity: int = 64

    #: Allocation groups on the volume.
    num_allocation_groups: int = 8
    #: Cross-AG strategy: ``locality``, ``round-robin`` or ``random``.
    #: The paper's MDS rotates AGs by default (§V.A) -- which is exactly
    #: why MDS-side allocation scatters successive I/Os and motivates
    #: space delegation (§IV.A).  ``random`` rotation avoids the
    #: resonance a fixed rotation period has with thread-count-sized
    #: allocation bursts while keeping the same scattering behaviour.
    ag_strategy: str = "random"

    @property
    def client_nodes(self) -> int:
        """Simulated client node processes actually built."""
        return self.client_processes or self.num_clients

    def __post_init__(self) -> None:
        if self.num_clients <= 0:
            raise ValueError(f"num_clients must be positive: {self.num_clients}")
        if self.client_processes is not None and not (
            1 <= self.client_processes <= self.num_clients
        ):
            raise ValueError(
                f"client_processes must be in [1, num_clients="
                f"{self.num_clients}], got {self.client_processes}"
            )
        from repro.sim.engine import SCHEDULERS

        if self.scheduler not in SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {self.scheduler!r}; choose from "
                f"{sorted(SCHEDULERS)}"
            )
        if self.commit_mode not in ("synchronous", "delayed", "unordered"):
            raise ValueError(f"unknown commit_mode {self.commit_mode!r}")
        if self.space_delegation and self.commit_mode == "synchronous":
            # The paper evaluates delegation only on top of delayed
            # commit; allowing it under sync would be a novel variant, so
            # keep configurations honest.
            raise ValueError(
                "space delegation requires delayed commit (paper §IV.A)"
            )
        if self.mds.shards < 1:
            raise ValueError(
                f"mds.shards must be >= 1, got {self.mds.shards}"
            )
        if self.mds.shards > 1:
            slice_size = self.disk.volume_size // self.mds.shards
            if slice_size < self.num_allocation_groups:
                raise ValueError(
                    f"volume too small for {self.mds.shards} shards x "
                    f"{self.num_allocation_groups} allocation groups"
                )
        if self.replication != "none":
            from repro.storage.groups import ARRANGEMENTS

            if self.replication not in ARRANGEMENTS:
                raise ValueError(
                    f"unknown replication {self.replication!r}; choose "
                    f"from {sorted(ARRANGEMENTS)}"
                )
        if self.witness_capacity < 1:
            raise ValueError(
                f"witness_capacity must be >= 1, got {self.witness_capacity}"
            )
        # Canonical config normalization: the MDS hands out chunks of
        # the size the clients pool, so a delegation_chunk override on
        # the cluster config propagates into the MDS parameters here --
        # every consumer (bench, check, examples) builds from one
        # normalized config instead of patching it up downstream.
        if self.mds.delegation_chunk != self.delegation_chunk:
            self.mds = dataclasses.replace(
                self.mds, delegation_chunk=self.delegation_chunk
            )

    def with_shards(self, shards: int) -> "ClusterConfig":
        """This config with ``shards`` metadata shards (re-validated)."""
        if shards == self.mds.shards:
            return self
        return dataclasses.replace(
            self, mds=dataclasses.replace(self.mds, shards=shards)
        )

    def with_replication(self, replication: str) -> "ClusterConfig":
        """This config with the given replication arrangement."""
        if replication == self.replication:
            return self
        return dataclasses.replace(self, replication=replication)

    # -- the three Redbud configurations of Fig. 4/5 -------------------------

    @classmethod
    def original_redbud(cls, **kw: _t.Any) -> "ClusterConfig":
        """Original Redbud: synchronous ordered writes."""
        return cls(commit_mode="synchronous", space_delegation=False, **kw)

    @classmethod
    def delayed_commit(cls, **kw: _t.Any) -> "ClusterConfig":
        """Redbud with delayed commit but MDS-side allocation."""
        return cls(commit_mode="delayed", space_delegation=False, **kw)

    @classmethod
    def space_delegation_config(cls, **kw: _t.Any) -> "ClusterConfig":
        """Redbud with delayed commit and space delegation."""
        return cls(commit_mode="delayed", space_delegation=True, **kw)
