"""Shared run harness for every cluster assembly.

All three systems (Redbud, NFS3, PVFS2) expose the same surface to the
benchmark harness: build from a :class:`~repro.fs.config.ClusterConfig`,
then :meth:`BaseCluster.run_workload` a personality for a fixed virtual
duration.  The harness handles the setup phase (excluded from metrics),
the warmup boundary, per-client thread spawning, and result assembly.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass, field

from repro.analysis.metrics import LatencyStats, OpMetrics
from repro.client.filesystem import FileSystemAPI
from repro.sim import Environment, StreamRNG
from repro.workloads.aggregate import aggregate_thread
from repro.workloads.spec import Workload, WorkloadContext


@dataclass
class RunResult:
    """Everything measured in one workload run."""

    system: str
    workload: str
    duration: float
    metrics: OpMetrics
    #: System-specific extras (merge stats, pool samples, link stats...).
    extras: _t.Dict[str, _t.Any] = field(default_factory=dict)

    @property
    def ops_completed(self) -> int:
        return self.metrics.total_ops

    @property
    def ops_per_second(self) -> float:
        return self.metrics.total_ops / self.duration

    @property
    def bytes_per_second(self) -> float:
        return self.metrics.total_bytes / self.duration

    def latency(self, op: _t.Optional[str] = None) -> LatencyStats:
        return self.metrics.latency(op)

    def speedup_over(self, baseline: "RunResult") -> float:
        """ops/s ratio against another run (Fig. 3's normalisation)."""
        if baseline.ops_per_second == 0:
            raise ZeroDivisionError("baseline completed no operations")
        return self.ops_per_second / baseline.ops_per_second


class BaseCluster:
    """Common machinery: thread spawning, measurement windows, results."""

    system_name = "base"

    def __init__(
        self,
        env: Environment,
        seed: int = 0,
        obs: _t.Optional[_t.Any] = None,
    ) -> None:
        self.env = env
        self.root_rng = StreamRNG(seed)
        #: Observability bundle (``repro.obs.Instrumentation``) or None.
        #: Attaching binds the tracer clock and engine probe to ``env``.
        self.obs = obs
        if obs is not None:
            obs.attach(env)
        #: True once ``run_workload``'s setup barrier has passed.  Fault
        #: injection reads this to defer client deaths out of the setup
        #: phase (a dead client would park its setup process and hang
        #: the all-of barrier forever).
        self.setup_complete = False

    # -- subclass surface ------------------------------------------------------

    def client_fs(self, index: int) -> FileSystemAPI:
        """The file-system endpoint workloads drive on client ``index``."""
        raise NotImplementedError

    @property
    def num_clients(self) -> int:
        raise NotImplementedError

    @property
    def num_client_nodes(self) -> int:
        """Simulated client nodes; < ``num_clients`` under aggregation."""
        config = getattr(self, "config", None)
        processes = getattr(config, "client_processes", None)
        return processes or self.num_clients

    def collect_extras(self) -> _t.Dict[str, _t.Any]:
        """System-specific stats folded into the RunResult."""
        return {}

    def apply_cache_recommendation(self, capacity: int) -> None:
        """Scale cache capacities to the workload's namespace size.

        The simulated namespaces are scaled down from the paper's (a few
        hundred files instead of tens of thousands), so cache capacities
        must scale down too or every system becomes an all-RAM file
        system and the disk never matters.  Each personality recommends
        a per-client capacity; subclasses apply it to their caches.
        """

    # -- the run harness ----------------------------------------------------------

    def run_workload(
        self,
        workload: Workload,
        duration: float = 5.0,
        warmup: float = 0.25,
    ) -> RunResult:
        """Set up, warm up, measure for ``duration`` virtual seconds."""
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        if workload.recommended_cache_capacity is not None:
            self.apply_cache_recommendation(
                workload.recommended_cache_capacity
            )
        env = self.env
        nodes = self.num_client_nodes
        aggregated = nodes != self.num_clients
        if aggregated and not workload.aggregatable:
            raise ValueError(
                f"workload {workload.name!r} cannot run on aggregate "
                f"client nodes (client_processes={nodes} < "
                f"num_clients={self.num_clients}): it synchronises "
                "across all clients"
            )
        shared: _t.Dict[str, _t.Any] = {}
        # One context per *personality*, always: under aggregation the
        # personalities keep their own RNG substreams, metrics and
        # private state and only share a node's endpoint (personality p
        # lives on node p % nodes -- the identity map when not
        # aggregated).  See ``repro.workloads.aggregate``.
        contexts = [
            WorkloadContext(
                env=env,
                fs=self.client_fs(i % nodes),
                rng=self.root_rng.stream("workload", i),
                client_index=i,
                num_clients=self.num_clients,
                metrics=OpMetrics(),
                shared=shared,
            )
            for i in range(self.num_clients)
        ]

        setups = [
            env.process(
                workload.setup(ctx), name=f"setup-{ctx.client_index}"
            )
            for ctx in contexts
        ]
        env.run(until=env.all_of(setups))
        self.setup_complete = True
        for ctx in contexts:
            ctx.in_setup = False

        measure_start = env.now + warmup
        deadline = measure_start + duration

        def thread_body(ctx: WorkloadContext, tid: int) -> _t.Generator:
            while env.now < deadline:
                yield from workload.op(ctx, tid)

        def start_measuring() -> _t.Generator:
            yield env.timeout(warmup)
            for ctx in contexts:
                ctx.measuring = True

        env.process(start_measuring(), name="measure-gate")
        if not aggregated:
            for ctx in contexts:
                for tid in range(workload.threads_per_client):
                    env.process(
                        thread_body(ctx, tid),
                        name=f"app-c{ctx.client_index}-t{tid}",
                    )
        else:
            for node in range(nodes):
                node_ctxs = contexts[node::nodes]
                for tid in range(workload.threads_per_client):
                    env.process(
                        aggregate_thread(
                            workload,
                            node_ctxs,
                            self.root_rng.stream("aggregate", node, tid),
                            tid,
                            deadline,
                        ),
                        name=f"agg-n{node}-t{tid}",
                    )
        env.run(until=deadline)

        metrics = OpMetrics()
        for ctx in contexts:
            metrics.merge_from(ctx.metrics)
        if self.obs is not None:
            # Publish the per-op end-to-end latency histograms into the
            # registry so ``repro stats`` (and the SLO layer) read tails
            # straight from a snapshot.  Pure bookkeeping: merging
            # bucket counts schedules nothing and consumes no RNG.
            for op in metrics.op_types():
                self.obs.registry.histogram(
                    f"slo.latency.{op}"
                ).merge_from(metrics.histogram(op))
        return RunResult(
            system=self.system_name,
            workload=workload.name,
            duration=duration,
            metrics=metrics,
            extras=self.collect_extras(),
        )
