"""Factory: build any of the four Fig. 3 systems by name."""

from __future__ import annotations

import typing as _t

from repro.fs.base import BaseCluster
from repro.fs.config import ClusterConfig
from repro.fs.nfs3 import Nfs3Cluster
from repro.fs.pvfs2 import Pvfs2Cluster
from repro.fs.redbud import RedbudCluster

#: The four systems compared in Fig. 3.
SYSTEMS = (
    "pvfs2",
    "nfs3",
    "redbud-original",
    "redbud-delayed",
)


def build_cluster(
    system: str,
    num_clients: int = 7,
    seed: int = 0,
    obs: _t.Optional[_t.Any] = None,
    **config_kw: _t.Any,
) -> BaseCluster:
    """Build a ready-to-run cluster for one of the Fig. 3 systems.

    ``redbud-delayed`` enables both delayed commit and space delegation
    (the full paper configuration); ``redbud-original`` is synchronous.
    ``obs`` is an optional :class:`repro.obs.Instrumentation` bundle;
    when given, the cluster traces causal spans and publishes metrics.
    ``shards`` (redbud systems only) splits the metadata service into
    that many shards; ``shards=1`` is byte-identical to the single MDS.
    ``replication`` (redbud systems only) puts a replicated storage
    group behind the disk array (``mirror3`` / ``block4-2``);
    ``replication="none"`` is byte-identical to an unreplicated build.
    Any other keyword lands on :class:`ClusterConfig` -- notably
    ``client_processes`` (aggregate client nodes: ``num_clients``
    personalities multiplexed onto that many simulated nodes, see
    ``repro.workloads.aggregate``) and ``scheduler`` (``calendar`` or
    ``heap`` event calendar).
    """
    shards = config_kw.pop("shards", None)
    if shards is not None and shards > 1 and not system.startswith(
        "redbud"
    ):
        raise ValueError(
            f"metadata sharding requires a redbud system, got {system!r}"
        )
    replication = config_kw.pop("replication", None)
    if (
        replication is not None
        and replication != "none"
        and not system.startswith("redbud")
    ):
        raise ValueError(
            f"storage replication requires a redbud system, got {system!r}"
        )
    if system == "pvfs2":
        return Pvfs2Cluster(
            ClusterConfig(
                num_clients=num_clients,
                commit_mode="synchronous",
                **config_kw,
            ),
            seed=seed,
            obs=obs,
        )
    if system == "nfs3":
        return Nfs3Cluster(
            ClusterConfig(
                num_clients=num_clients,
                commit_mode="synchronous",
                **config_kw,
            ),
            seed=seed,
            obs=obs,
        )
    if system == "redbud-original":
        config = ClusterConfig.original_redbud(
            num_clients=num_clients, **config_kw
        )
        if shards is not None:
            config = config.with_shards(shards)
        if replication is not None:
            config = config.with_replication(replication)
        return RedbudCluster(config, seed=seed, obs=obs)
    if system == "redbud-delayed":
        config = ClusterConfig.space_delegation_config(
            num_clients=num_clients, **config_kw
        )
        if shards is not None:
            config = config.with_shards(shards)
        if replication is not None:
            config = config.with_replication(replication)
        return RedbudCluster(config, seed=seed, obs=obs)
    raise ValueError(f"unknown system {system!r}; pick from {SYSTEMS}")
