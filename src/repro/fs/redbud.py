"""The Redbud cluster assembly (Fig. 2).

``config.mds.shards`` metadata servers (the paper's testbed is the
``shards=1`` default: one MDS, ``num_clients`` client nodes, a shared FC
disk array).  Metadata RPCs cross per-client Ethernet links to the MDS
shards; file data goes straight from each client's block queue to the
array.  The three configurations the paper evaluates map to
:class:`~repro.fs.config.ClusterConfig` factory methods:
``original_redbud`` (synchronous commit), ``delayed_commit``, and
``space_delegation_config``.

With ``shards > 1`` the cluster builds a
:class:`~repro.mds.sharding.ShardedMetadataService`: each shard owns a
namespace partition, a disjoint volume slice with its own allocation
groups, its own RPC port/daemon pool/dedup cache/lease GC, and clients
route per-file state (commit batches, delegated space, fence
generations) to the owning shard.  ``shards=1`` takes the exact legacy
construction path and is byte-identical to the single-MDS code.
"""

from __future__ import annotations

import typing as _t

from repro.analysis.mergeratio import aggregate_merge_ratio
from repro.analysis.timeseries import summarize_pool_samples
from repro.client.client import RedbudClient
from repro.core.delegation import DoubleSpacePool
from repro.fs.base import BaseCluster, RunResult
from repro.fs.config import ClusterConfig
from repro.mds.allocation import SpaceManager
from repro.mds.namespace import Namespace
from repro.mds.server import MetadataServer
from repro.mds.sharding import (
    ShardedMetadataService,
    ShardRouter,
    ShardRoutingTransport,
)
from repro.net.link import Link
from repro.net.rpc import RpcClient, RpcServerPort, RpcTransport
from repro.sim import Environment
from repro.storage.blockdev import BlockDevice
from repro.storage.blktrace import BlkTrace
from repro.storage.cache import PageCache
from repro.storage.disk import DiskArray

__all__ = ["RedbudCluster", "RunResult"]


class RedbudCluster(BaseCluster):
    """Redbud parallel file system on a simulated 8-node testbed."""

    system_name = "redbud"

    def __init__(
        self,
        config: ClusterConfig,
        seed: int = 0,
        obs: _t.Optional[_t.Any] = None,
    ) -> None:
        super().__init__(
            Environment(scheduler=config.scheduler), seed=seed, obs=obs
        )
        self.config = config
        env = self.env
        num_shards = config.mds.shards

        self.blktrace = BlkTrace()
        self.array = DiskArray(
            env,
            config.disk,
            self.root_rng.stream("disk"),
            trace=self.blktrace,
            obs=obs,
        )
        self.router = ShardRouter(num_shards)
        if num_shards == 1:
            # Legacy single-MDS construction: identical stream names and
            # object shapes, so the blktrace is byte-identical to the
            # pre-sharding code (a golden test holds this line).
            namespaces = [Namespace()]
            spaces = [
                SpaceManager(
                    volume_size=config.disk.volume_size,
                    num_groups=config.num_allocation_groups,
                    strategy=config.ag_strategy,
                    rng=self.root_rng.stream("alloc"),
                )
            ]
        else:
            slice_size = config.disk.volume_size // num_shards
            namespaces = [
                Namespace(first_id=k + 1, id_step=num_shards)
                for k in range(num_shards)
            ]
            spaces = [
                SpaceManager(
                    volume_size=slice_size,
                    num_groups=config.num_allocation_groups,
                    strategy=config.ag_strategy,
                    rng=self.root_rng.stream("alloc", k),
                    base_offset=k * slice_size,
                )
                for k in range(num_shards)
            ]
            self.array.configure_shards(num_shards, slice_size)

        # Replicated storage group + CURP witnesses (strictly opt-in:
        # ``replication="none"`` builds neither, touches no RNG stream,
        # and keeps the blktrace byte-identical -- a golden test holds
        # this line like the ``shards=1`` one above).
        self.group = None
        self.witnesses = None
        if config.replication != "none":
            from repro.storage.groups import StorageGroup, arrangement_named

            self.group = StorageGroup(
                env,
                arrangement_named(config.replication),
                rng=self.root_rng.stream("group"),
                obs=obs,
            )
            self.array.attach_group(self.group)
            if config.commit_mode in ("delayed", "unordered"):
                from repro.core.witness import WitnessSet

                self.witnesses = WitnessSet(
                    env,
                    num_witnesses=self.group.size,
                    capacity=config.witness_capacity,
                    # One fast round trip to the slowest witness: wire
                    # propagation out and back plus a small record cost.
                    # Deterministic -- no RNG.
                    rtt=2 * config.link.propagation + 1e-4,
                    obs=obs,
                )
        self.ports = [RpcServerPort(env) for _ in range(num_shards)]

        downlinks: _t.Dict[int, Link] = {}
        self.downlinks = downlinks
        self.clients: _t.List[RedbudClient] = []
        self.uplinks: _t.List[Link] = []
        for cid in range(config.client_nodes):
            uplink = Link(
                env,
                bandwidth=config.link.bandwidth,
                propagation=config.link.propagation,
                per_message_overhead=config.link.per_message_overhead,
                name=f"eth-up-{cid}",
            )
            downlink = Link(
                env,
                bandwidth=config.link.bandwidth,
                propagation=config.link.propagation,
                per_message_overhead=config.link.per_message_overhead,
                name=f"eth-down-{cid}",
            )
            self.uplinks.append(uplink)
            downlinks[cid] = downlink
            if num_shards == 1:
                transport: _t.Any = RpcTransport(
                    env, uplink, downlink, self.ports[0]
                )
            else:
                transport = ShardRoutingTransport(
                    env, uplink, downlink, self.ports, self.router
                )
            rpc = RpcClient(
                env,
                cid,
                transport,
                obs=obs,
                retry=config.retry,
                retry_rng=(
                    self.root_rng.stream("rpc-retry", cid)
                    if config.retry is not None
                    else None
                ),
            )
            delegation_pools = (
                {
                    k: DoubleSpacePool(chunk_size=config.delegation_chunk)
                    for k in range(num_shards)
                }
                if config.space_delegation
                else None
            )
            client = RedbudClient(
                env,
                cid,
                rpc,
                BlockDevice(env, cid, self.array, obs=obs),
                cache=PageCache(capacity=config.client_cache_capacity),
                commit_mode=config.commit_mode,
                delegation=(
                    delegation_pools[0] if delegation_pools else None
                ),
                commit_queue_capacity=config.commit_queue_capacity,
                thread_pool_policy=config.thread_pool,
                compound_policy=config.compound,
                fixed_compound_degree=config.fixed_compound_degree,
                dirty_limit=config.dirty_limit,
                obs=obs,
                degrade_after_timeouts=config.degrade_after_timeouts,
                degrade_backlog=config.degrade_backlog,
                delegation_pools=delegation_pools,
                shard_of_file=self.router.shard_of_file,
                num_shards=num_shards,
                witnesses=self.witnesses,
            )
            self.clients.append(client)

        self.metadata = ShardedMetadataService(
            [
                MetadataServer(
                    env,
                    config.mds,
                    namespaces[k],
                    spaces[k],
                    self.ports[k],
                    downlinks,
                    obs=obs,
                )
                for k in range(num_shards)
            ],
            self.router,
        )
        for k, server in enumerate(self.metadata.servers):
            if server.gc is not None:
                # Storage-side fencing (DESIGN §8): reclaiming a silent
                # client's space also revokes its array write access *on
                # that shard's slice*, so a reclaimed-but-alive client
                # cannot scribble over blocks the shard may already have
                # re-allocated.
                server.gc.on_reclaim = (
                    lambda cid, _k=k: self.array.fence(cid, _k)
                )
                # When the fenced client is next heard from, the
                # (modelled) state-re-establishment handshake stamps its
                # future writes with the current generation; anything it
                # queued before re-admission stays behind the fence.
                server.gc.on_readmit = (
                    lambda cid, _k=k: self._readmit_client(cid, _k)
                )
        if obs is not None:
            from repro.obs.instrument import register_redbud_gauges

            register_redbud_gauges(obs, self)

    # -- single-MDS compatibility surface -----------------------------------
    # ``shards=1`` callers (and everything written against the paper's
    # topology) address "the" MDS, namespace, allocator, and port; those
    # are shard 0's.

    @property
    def mds(self) -> MetadataServer:
        return self.metadata.shard(0)

    @property
    def namespace(self) -> Namespace:
        return self.metadata.shard(0).namespace

    @property
    def space(self) -> SpaceManager:
        return self.metadata.shard(0).space

    @property
    def port(self) -> RpcServerPort:
        return self.ports[0]

    def _readmit_client(self, client_id: int, shard: int = 0) -> None:
        if 0 <= client_id < len(self.clients):
            self.clients[client_id].blockdev.write_generations[shard] = (
                self.array.fence_generations.get((client_id, shard), 0)
            )

    # -- BaseCluster surface ------------------------------------------------------

    @property
    def num_clients(self) -> int:
        return self.config.num_clients

    def client_fs(self, index: int) -> RedbudClient:
        return self.clients[index]

    def collect_extras(self) -> _t.Dict[str, _t.Any]:
        merge = aggregate_merge_ratio(
            c.blockdev.scheduler for c in self.clients
        )
        extras: _t.Dict[str, _t.Any] = {
            "merge_stats": merge,
            "merge_ratio": merge.merge_ratio,
            "seek_analysis": self.blktrace.analyze(),
            "array_utilization": self.array.utilization,
            "mds_requests": self.metadata.requests_processed,
            "mds_ops": self.metadata.ops_processed,
            "rpc_messages": sum(link.stats.messages for link in self.uplinks),
            "cache_hits": sum(c.cache.hits for c in self.clients),
            "cache_misses": sum(c.cache.misses for c in self.clients),
        }
        if self.metadata.num_shards > 1:
            extras["mds_shards"] = self.metadata.num_shards
            extras["mds_per_shard"] = self.metadata.per_shard_stats()
        if self.config.retry is not None:
            extras["rpc_retries"] = sum(
                c.rpc.retries for c in self.clients
            )
            extras["rpc_timeouts"] = sum(
                c.rpc.timeouts for c in self.clients
            )
            extras["degraded_writes"] = sum(
                c.degraded_writes for c in self.clients
            )
            extras["mds_restarts"] = self.metadata.restarts
            extras["duplicate_commits_suppressed"] = (
                self.metadata.duplicate_commits_suppressed
            )
            extras["duplicate_requests_suppressed"] = (
                self.metadata.duplicate_requests_suppressed
            )
            gc_bytes = [
                server.gc.bytes_reclaimed_total
                for server in self.metadata.servers
                if server.gc is not None
            ]
            if gc_bytes:
                extras["lease_gc_bytes_reclaimed"] = sum(gc_bytes)
        if self.config.commit_mode in ("delayed", "unordered"):
            extras["pool_samples"] = [
                c.thread_pool.samples for c in self.clients
            ]
            extras["pool_summaries"] = [
                summarize_pool_samples(
                    c.thread_pool.samples,
                    self.config.thread_pool.max_threads,
                )
                for c in self.clients
            ]
            extras["mean_compound_degree"] = _mean(
                c.daemon_ctx.stats.mean_degree
                for c in self.clients
                if c.daemon_ctx.stats.rpcs_sent > 0
            )
            extras["commit_rpcs"] = sum(
                c.daemon_ctx.stats.rpcs_sent for c in self.clients
            )
            extras["ops_committed"] = sum(
                c.daemon_ctx.stats.ops_committed for c in self.clients
            )
        if self.group is not None:
            extras["storage_group"] = self.group.summary()
        if self.witnesses is not None:
            extras["witnesses"] = self.witnesses.summary()
        return extras

    # -- convenience for experiments ------------------------------------------------

    def apply_cache_recommendation(self, capacity: int) -> None:
        for client in self.clients:
            client.cache.capacity = capacity

    def settle(self, grace: float = 2.0) -> None:
        """Let in-flight background work land (before crash/consistency)."""
        self.env.run(until=self.env.now + grace)


def _mean(values: _t.Iterable[float]) -> float:
    items = list(values)
    return sum(items) / len(items) if items else 0.0
