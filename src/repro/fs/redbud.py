"""The Redbud cluster assembly (Fig. 2).

One MDS, ``num_clients`` client nodes, a shared FC disk array.  Metadata
RPCs cross per-client Ethernet links to the MDS; file data goes straight
from each client's block queue to the array.  The three configurations
the paper evaluates map to :class:`~repro.fs.config.ClusterConfig`
factory methods: ``original_redbud`` (synchronous commit),
``delayed_commit``, and ``space_delegation_config``.
"""

from __future__ import annotations

import typing as _t

from repro.analysis.mergeratio import aggregate_merge_ratio
from repro.analysis.timeseries import summarize_pool_samples
from repro.client.client import RedbudClient
from repro.core.delegation import DoubleSpacePool
from repro.fs.base import BaseCluster, RunResult
from repro.fs.config import ClusterConfig
from repro.mds.allocation import SpaceManager
from repro.mds.namespace import Namespace
from repro.mds.server import MetadataServer
from repro.net.link import Link
from repro.net.rpc import RpcClient, RpcServerPort, RpcTransport
from repro.sim import Environment
from repro.storage.blockdev import BlockDevice
from repro.storage.blktrace import BlkTrace
from repro.storage.cache import PageCache
from repro.storage.disk import DiskArray

__all__ = ["RedbudCluster", "RunResult"]


class RedbudCluster(BaseCluster):
    """Redbud parallel file system on a simulated 8-node testbed."""

    system_name = "redbud"

    def __init__(
        self,
        config: ClusterConfig,
        seed: int = 0,
        obs: _t.Optional[_t.Any] = None,
    ) -> None:
        super().__init__(Environment(), seed=seed, obs=obs)
        import dataclasses

        # The MDS must hand out chunks of the configured size on the
        # layout-get piggyback path too, not just on explicit requests.
        if config.mds.delegation_chunk != config.delegation_chunk:
            config = dataclasses.replace(
                config,
                mds=dataclasses.replace(
                    config.mds, delegation_chunk=config.delegation_chunk
                ),
            )
        self.config = config
        env = self.env

        self.blktrace = BlkTrace()
        self.array = DiskArray(
            env,
            config.disk,
            self.root_rng.stream("disk"),
            trace=self.blktrace,
            obs=obs,
        )
        self.namespace = Namespace()
        self.space = SpaceManager(
            volume_size=config.disk.volume_size,
            num_groups=config.num_allocation_groups,
            strategy=config.ag_strategy,
            rng=self.root_rng.stream("alloc"),
        )
        self.port = RpcServerPort(env)

        downlinks: _t.Dict[int, Link] = {}
        self.clients: _t.List[RedbudClient] = []
        self.uplinks: _t.List[Link] = []
        for cid in range(config.num_clients):
            uplink = Link(
                env,
                bandwidth=config.link.bandwidth,
                propagation=config.link.propagation,
                per_message_overhead=config.link.per_message_overhead,
                name=f"eth-up-{cid}",
            )
            downlink = Link(
                env,
                bandwidth=config.link.bandwidth,
                propagation=config.link.propagation,
                per_message_overhead=config.link.per_message_overhead,
                name=f"eth-down-{cid}",
            )
            self.uplinks.append(uplink)
            downlinks[cid] = downlink
            rpc = RpcClient(
                env,
                cid,
                RpcTransport(env, uplink, downlink, self.port),
                obs=obs,
                retry=config.retry,
                retry_rng=(
                    self.root_rng.stream("rpc-retry", cid)
                    if config.retry is not None
                    else None
                ),
            )
            delegation = (
                DoubleSpacePool(chunk_size=config.delegation_chunk)
                if config.space_delegation
                else None
            )
            client = RedbudClient(
                env,
                cid,
                rpc,
                BlockDevice(env, cid, self.array, obs=obs),
                cache=PageCache(capacity=config.client_cache_capacity),
                commit_mode=config.commit_mode,
                delegation=delegation,
                commit_queue_capacity=config.commit_queue_capacity,
                thread_pool_policy=config.thread_pool,
                compound_policy=config.compound,
                fixed_compound_degree=config.fixed_compound_degree,
                dirty_limit=config.dirty_limit,
                obs=obs,
                degrade_after_timeouts=config.degrade_after_timeouts,
                degrade_backlog=config.degrade_backlog,
            )
            self.clients.append(client)

        self.mds = MetadataServer(
            env,
            config.mds,
            self.namespace,
            self.space,
            self.port,
            downlinks,
            obs=obs,
        )
        if self.mds.gc is not None:
            # Storage-side fencing (DESIGN §8): reclaiming a silent
            # client's space also revokes its array write access, so a
            # reclaimed-but-alive client cannot scribble over blocks the
            # MDS may already have re-allocated.
            self.mds.gc.on_reclaim = self.array.fence
            # When the fenced client is next heard from, the (modelled)
            # state-re-establishment handshake stamps its future writes
            # with the current generation; anything it queued before
            # re-admission stays behind the fence.
            self.mds.gc.on_readmit = self._readmit_client
        if obs is not None:
            from repro.obs.instrument import register_redbud_gauges

            register_redbud_gauges(obs, self)

    def _readmit_client(self, client_id: int) -> None:
        if 0 <= client_id < len(self.clients):
            self.clients[client_id].blockdev.write_generation = (
                self.array.fence_generations.get(client_id, 0)
            )

    # -- BaseCluster surface ------------------------------------------------------

    @property
    def num_clients(self) -> int:
        return self.config.num_clients

    def client_fs(self, index: int) -> RedbudClient:
        return self.clients[index]

    def collect_extras(self) -> _t.Dict[str, _t.Any]:
        merge = aggregate_merge_ratio(
            c.blockdev.scheduler for c in self.clients
        )
        extras: _t.Dict[str, _t.Any] = {
            "merge_stats": merge,
            "merge_ratio": merge.merge_ratio,
            "seek_analysis": self.blktrace.analyze(),
            "array_utilization": self.array.utilization,
            "mds_requests": self.mds.requests_processed,
            "mds_ops": self.mds.ops_processed,
            "rpc_messages": sum(link.stats.messages for link in self.uplinks),
            "cache_hits": sum(c.cache.hits for c in self.clients),
            "cache_misses": sum(c.cache.misses for c in self.clients),
        }
        if self.config.retry is not None:
            extras["rpc_retries"] = sum(
                c.rpc.retries for c in self.clients
            )
            extras["rpc_timeouts"] = sum(
                c.rpc.timeouts for c in self.clients
            )
            extras["degraded_writes"] = sum(
                c.degraded_writes for c in self.clients
            )
            extras["mds_restarts"] = self.mds.restarts
            extras["duplicate_commits_suppressed"] = (
                self.mds.duplicate_commits_suppressed
            )
            extras["duplicate_requests_suppressed"] = (
                self.mds.duplicate_requests_suppressed
            )
            if self.mds.gc is not None:
                extras["lease_gc_bytes_reclaimed"] = (
                    self.mds.gc.bytes_reclaimed_total
                )
        if self.config.commit_mode in ("delayed", "unordered"):
            extras["pool_samples"] = [
                c.thread_pool.samples for c in self.clients
            ]
            extras["pool_summaries"] = [
                summarize_pool_samples(
                    c.thread_pool.samples,
                    self.config.thread_pool.max_threads,
                )
                for c in self.clients
            ]
            extras["mean_compound_degree"] = _mean(
                c.daemon_ctx.stats.mean_degree
                for c in self.clients
                if c.daemon_ctx.stats.rpcs_sent > 0
            )
            extras["commit_rpcs"] = sum(
                c.daemon_ctx.stats.rpcs_sent for c in self.clients
            )
            extras["ops_committed"] = sum(
                c.daemon_ctx.stats.ops_committed for c in self.clients
            )
        return extras

    # -- convenience for experiments ------------------------------------------------

    def apply_cache_recommendation(self, capacity: int) -> None:
        for client in self.clients:
            client.cache.capacity = capacity

    def settle(self, grace: float = 2.0) -> None:
        """Let in-flight background work land (before crash/consistency)."""
        self.env.run(until=self.env.now + grace)


def _mean(values: _t.Iterable[float]) -> float:
    items = list(values)
    return sum(items) / len(items) if items else 0.0
