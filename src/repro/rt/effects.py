"""Asyncio implementation of the effects boundary.

:class:`AsyncioEffects` lets the kernel primitives (:mod:`repro.core.kernel`)
and everything written against them -- processes, stores, resources,
conditions, the whole protocol layer -- run on a real asyncio event loop:

- ``schedule(event, delay)`` becomes ``loop.call_soon`` / ``call_later``
  into :meth:`_dispatch`, which runs the event's callbacks exactly like
  ``Environment.step`` does (tombstone skip included);
- ``now`` is ``loop.time()`` rebased to the substrate's construction
  instant, so protocol timestamps stay small positive floats as in the
  simulator;
- :meth:`as_future` bridges a kernel event into an awaitable for
  coroutine code (socket readers, server mainloops), and
  :meth:`event_from_future` bridges the other way.

What is *not* provided here: the deterministic ``(time, priority, seq)``
total order.  Real timers fire in loop order; two runs of the same
workload on this substrate will interleave differently.  The protocol
stack is already correct under that weaker contract -- the simulator's
fault schedules explore far harsher reorderings -- but trace
byte-identity is a SimEffects-only property (DESIGN §16).
"""

from __future__ import annotations

import asyncio
import typing as _t

from repro.core.effects import Effects
from repro.core.kernel.events import PRIORITY_NORMAL, Event
from repro.core.kernel.process import Process

__all__ = ["AsyncioEffects"]


class AsyncioEffects(Effects):
    """Real-time substrate over an asyncio event loop.

    Construct it *inside* a running loop (or pass one explicitly).  All
    kernel interaction must happen on that loop's thread -- the kernel
    primitives are as thread-naive as asyncio itself.
    """

    def __init__(
        self, loop: _t.Optional[asyncio.AbstractEventLoop] = None
    ) -> None:
        if loop is None:
            try:
                loop = asyncio.get_running_loop()
            except RuntimeError:
                loop = asyncio.new_event_loop()
                asyncio.set_event_loop(loop)
        self._loop = loop
        self._epoch = self._loop.time()
        self._active_process: _t.Optional[Process] = None
        #: Unhandled event failures (nothing yielded on the failed event
        #: and nobody defused it).  The simulator raises out of ``run``;
        #: an asyncio callback has no caller to raise into, so failures
        #: are recorded here and re-raised by :meth:`check_failures` /
        #: the next :meth:`as_future` awaiter.
        self.failures: _t.List[BaseException] = []
        self._disk: _t.Optional[_t.Any] = None

    # -- substrate contract ------------------------------------------------

    @property
    def now(self) -> float:
        """Seconds of monotonic real time since substrate construction."""
        return self._loop.time() - self._epoch

    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        return self._loop

    def schedule(
        self,
        event: Event,
        delay: float = 0.0,
        priority: int = PRIORITY_NORMAL,
    ) -> None:
        """Dispatch ``event`` on the loop ``delay`` seconds from now.

        ``priority`` is accepted for interface compatibility and
        ignored: asyncio offers FIFO ``call_soon`` order only.  Protocol
        code never depends on the urgent band for correctness (it exists
        so the simulator initialises processes before same-instant user
        events; on a real loop the equivalent FIFO order holds anyway).
        """
        if delay <= 0.0:
            self._loop.call_soon(self._dispatch, event)
        else:
            self._loop.call_later(delay, self._dispatch, event)

    def _dispatch(self, event: Event) -> None:
        """Run one event's callbacks -- ``Environment.step`` on a loop.

        A cancelled timeout leaves ``callbacks is None`` behind (the
        tombstone); its timer handle still fires and lands here as a
        no-op, exactly like the calendar's tombstone skip.
        """
        callbacks = event.callbacks
        if callbacks is None:
            return
        event.callbacks = None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            cause = event._value
            if not isinstance(cause, BaseException):
                cause = RuntimeError(repr(cause))
            self.failures.append(cause)
            self._loop.call_exception_handler(
                {
                    "message": f"unhandled failure in {event!r}",
                    "exception": cause,
                }
            )

    # -- asyncio bridges ---------------------------------------------------

    def as_future(self, event: Event) -> "asyncio.Future[_t.Any]":
        """An asyncio future completing when ``event`` is processed.

        The bridge for coroutine code driving kernel machinery: server
        mainloops await kernel events, socket readers trigger them.
        """
        future: "asyncio.Future[_t.Any]" = self._loop.create_future()

        def _complete(ev: Event) -> None:
            if future.cancelled():
                return
            if ev._ok:
                future.set_result(ev._value)
            else:
                ev._defused = True
                cause = ev._value
                if not isinstance(cause, BaseException):
                    cause = RuntimeError(repr(cause))
                future.set_exception(cause)

        if event.callbacks is None:
            # Already processed: complete on the next loop tick.
            self._loop.call_soon(_complete, event)
        else:
            event.callbacks.append(_complete)
        return future

    def event_from_future(
        self, future: "asyncio.Future[_t.Any]"
    ) -> Event:
        """A kernel event mirroring an asyncio future's completion."""
        event = Event(self)

        def _complete(fut: "asyncio.Future[_t.Any]") -> None:
            if event.triggered:
                return
            if fut.cancelled():
                event.fail(asyncio.CancelledError())
            elif fut.exception() is not None:
                event.fail(fut.exception())
            else:
                event.succeed(fut.result())

        future.add_done_callback(_complete)
        return event

    async def wait(self, event: Event) -> _t.Any:
        """Await a kernel event from coroutine code."""
        return await self.as_future(event)

    def check_failures(self) -> None:
        """Raise the first recorded unhandled event failure, if any."""
        if self.failures:
            raise self.failures[0]
