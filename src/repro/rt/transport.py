"""Client-side TCP transport: the rt stand-in for ``RpcTransport``.

Duck-type compatible with :class:`repro.net.rpc.RpcTransport` /
:class:`repro.mds.sharding.ShardRoutingTransport`: the same
``send_request`` / ``register_client`` surface and an ``uplink``
attribute, so :class:`repro.net.rpc.RpcClient` and the whole protocol
stack above it (commit queue, daemon pool, compound controller) plug in
unmodified.  Requests are routed per message by the deterministic
:class:`~repro.mds.sharding.ShardRouter` -- the same arithmetic the
simulator uses -- then framed (:mod:`repro.net.wire`) and written to the
owning shard's socket.

Replies are matched by ``(client_id, xid)``.  A retransmitted request
reuses its xid (what makes server-side duplicate suppression work), so
several replies may arrive for one slot; the first completes the
message's reply event, the rest are dropped -- identical semantics to
the simulator's ``_deliver_reply``.
"""

from __future__ import annotations

import asyncio
import typing as _t

from repro.mds.sharding import ShardRouter
from repro.net.messages import RpcMessage
from repro.net.wire import (
    FrameDecoder,
    encode_frame,
    request_to_wire,
    result_from_wire,
)

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.rt.effects import AsyncioEffects

__all__ = ["RtClusterTransport", "ctl_request"]


class _NullUplink:
    """Stands in for the modelled client NIC.

    The compound controller reads ``backlog`` when sizing compounds
    adaptively; a real socket exposes no modelled queue, so the backlog
    reads zero and rt deployments use fixed compound degrees.
    """

    backlog = 0
    queued_bytes = 0


class RtClusterTransport:
    """One client process's connections to every metadata shard."""

    def __init__(
        self,
        env: "AsyncioEffects",
        router: ShardRouter,
    ) -> None:
        self.env = env
        self.router = router
        self.uplink = _NullUplink()
        self.downlink = _NullUplink()
        self._writers: _t.List[asyncio.StreamWriter] = []
        self._readers: _t.List["asyncio.Task[None]"] = []
        self._inflight: _t.Dict[_t.Tuple[int, int], RpcMessage] = {}
        self.requests_sent = 0
        self.replies_received = 0
        self.unmatched_replies = 0

    @classmethod
    async def connect(
        cls,
        env: "AsyncioEffects",
        addresses: _t.Sequence[_t.Tuple[str, int]],
        router: _t.Optional[ShardRouter] = None,
    ) -> "RtClusterTransport":
        """Open one connection per shard and start the reply readers."""
        if router is None:
            router = ShardRouter(num_shards=len(addresses))
        if len(addresses) != router.num_shards:
            raise ValueError(
                f"{len(addresses)} addresses for {router.num_shards} shards"
            )
        transport = cls(env, router)
        for host, port in addresses:
            reader, writer = await asyncio.open_connection(host, port)
            transport._writers.append(writer)
            transport._readers.append(
                asyncio.ensure_future(transport._read_replies(reader))
            )
        return transport

    async def aclose(self) -> None:
        for task in self._readers:
            task.cancel()
        for writer in self._writers:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        self._readers = []
        self._writers = []

    # -- RpcTransport surface ----------------------------------------------

    def register_client(self, client_id: int) -> None:
        """Reply paths are per-connection on the server side; nothing to
        pre-register from here."""

    def send_request(self, message: RpcMessage) -> None:
        shard = self.router.shard_for_message(message)
        self._inflight[(message.client_id, message.xid)] = message
        self._writers[shard].write(encode_frame(request_to_wire(message)))
        self.requests_sent += 1

    # -- reply pump ---------------------------------------------------------

    async def _read_replies(self, reader: asyncio.StreamReader) -> None:
        decoder = FrameDecoder()
        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    return
                for frame in decoder.feed(data):
                    self._dispatch_reply(frame)
        except asyncio.CancelledError:
            return

    def _dispatch_reply(self, frame: _t.Dict[str, _t.Any]) -> None:
        if frame.get("frame") != "reply":
            self.unmatched_replies += 1
            return
        key = (frame["client_id"], frame["xid"])
        message = self._inflight.pop(key, None)
        if message is None:
            # A duplicate reply to a request that already completed
            # (the server answered both the original and a retransmit).
            self.unmatched_replies += 1
            return
        self.replies_received += 1
        if not message.reply_event.triggered:
            message.result = result_from_wire(frame["result"])
            message.reply_event.succeed(message.result)


async def ctl_request(
    host: str, port: int, request: _t.Dict[str, _t.Any], timeout: float = 10.0
) -> _t.Dict[str, _t.Any]:
    """One-shot control-channel exchange with a shard (ping/stats/shutdown)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(encode_frame(dict(request, frame="ctl")))
        await writer.drain()
        decoder = FrameDecoder()
        while True:
            data = await asyncio.wait_for(reader.read(65536), timeout)
            if not data:
                raise ConnectionError(
                    f"shard at {host}:{port} closed the ctl channel "
                    f"before answering {request!r}"
                )
            frames = decoder.feed(data)
            if frames:
                return frames[0]
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
