"""The real-time substrate: the protocol stack on asyncio sockets.

``repro.rt`` runs the *same* protocol objects the simulator runs --
:class:`~repro.core.commit_queue.CommitQueue`, the commit daemon pool,
:class:`~repro.net.rpc.RpcClient`, :class:`~repro.mds.server.MetadataServer`
-- against real time and real TCP instead of the virtual calendar:

- :class:`AsyncioEffects` implements the effects boundary
  (:class:`repro.core.effects.Effects`) over an asyncio event loop;
- :mod:`repro.rt.transport` speaks the length-prefixed JSON wire format
  (:mod:`repro.net.wire`) client-side;
- :mod:`repro.rt.server` hosts one metadata shard per process
  (``repro serve``);
- :mod:`repro.rt.disk` backs client writes with a real sparse volume
  file so the smoke oracles can verify on-disk bytes;
- :mod:`repro.rt.smoke` drives a workload against a live cluster and
  runs the fsck / exactly-once / recovery oracle subset on what the
  shards persisted (``repro smoke``).

See DESIGN.md §16 for the substrate contract and exactly which
guarantees (ordering, determinism) hold on which substrate.
"""

from repro.rt.effects import AsyncioEffects

__all__ = ["AsyncioEffects"]
