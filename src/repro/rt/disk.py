"""A real block device for the rt substrate: one sparse volume file.

The simulator's :class:`repro.storage.blockdev.BlockDevice` models seek
and transfer *times* but moves no bytes.  The rt substrate inverts that:
:class:`RtBlockDevice` spends no modelled time but performs real
``pwrite``/``pread`` against a shared sparse volume file -- which is what
lets the smoke oracles verify, byte for byte, that every committed
extent's data actually reached the right volume offsets before its
commit was sent (the ordered-write property on real hardware).

Writes carry a deterministic per-file pattern (:func:`pattern_byte`), so
the verifier needs no side channel: the volume contents alone prove
which file's data occupies each extent.

Duck-type compatible with the surface :class:`repro.client.client.RedbudClient`
uses: ``submit_write`` / ``submit_read`` / ``expedite_file`` and a
``scheduler`` stub with ``expedite_all_writes`` / ``drop_all``.
"""

from __future__ import annotations

import os
import typing as _t

from repro.core.kernel.events import Event

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.core.effects import Effects

__all__ = ["RtBlockDevice", "pattern_byte", "pattern_bytes"]


def pattern_byte(file_id: int) -> int:
    """The fill byte for ``file_id``'s data (251 is prime: no aliasing
    between files closer than 251 ids apart)."""
    return file_id % 251


def pattern_bytes(file_id: int, length: int) -> bytes:
    return bytes([pattern_byte(file_id)]) * length


class _NullScheduler:
    """Plug/expedite surface of the modelled disk scheduler, as no-ops.

    Real writes are submitted to the OS immediately; there is no plug
    list to expedite and no queue to drop.
    """

    def expedite_all_writes(self) -> None:
        pass

    def drop_all(self) -> int:
        return 0


class RtBlockDevice:
    """Writes file-patterned bytes into a shared sparse volume file."""

    def __init__(self, env: "Effects", volume_path: str, volume_size: int) -> None:
        self.env = env
        self.volume_path = volume_path
        self.volume_size = volume_size
        self.scheduler = _NullScheduler()
        flags = os.O_RDWR | os.O_CREAT
        self._fd = os.open(volume_path, flags, 0o644)
        self.writes = 0
        self.reads = 0
        self.bytes_written = 0

    def close(self) -> None:
        if self._fd >= 0:
            os.close(self._fd)
            self._fd = -1

    def submit_write(
        self,
        volume_offset: int,
        length: int,
        file_id: int = 0,
        sync: bool = False,
        trace_update: _t.Optional[int] = None,
    ) -> Event:
        """Write ``file_id``'s pattern at ``volume_offset``; event fires
        when the data is down.

        ``sync`` additionally fsyncs before completing -- the stability
        guarantee ordered commits rely on.  Completion is delivered
        through the substrate's scheduler (never inline), preserving the
        kernel invariant that a submit's event cannot fire before the
        submitter yields.
        """
        if volume_offset < 0 or volume_offset + length > self.volume_size:
            raise ValueError(
                f"write [{volume_offset}, {volume_offset + length}) "
                f"outside the {self.volume_size}-byte volume"
            )
        os.pwrite(self._fd, pattern_bytes(file_id, length), volume_offset)
        if sync:
            os.fsync(self._fd)
        self.writes += 1
        self.bytes_written += length
        done = Event(self.env)
        done.succeed()
        return done

    def submit_read(
        self, volume_offset: int, length: int, file_id: int = 0
    ) -> Event:
        data = os.pread(self._fd, length, volume_offset)
        self.reads += 1
        done = Event(self.env)
        done.succeed(data)
        return done

    def expedite_file(self, file_id: int) -> None:
        """fsync-kick surface: real writes are already submitted."""

    def fsync_volume(self) -> None:
        os.fsync(self._fd)
