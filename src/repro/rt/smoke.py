"""``repro smoke``: drive a live cluster, then audit its on-disk state.

The smoke run is the end-to-end proof that the effects refactor produced
*one* protocol stack: the exact client assembly the simulator builds --
:class:`~repro.client.client.RedbudClient` in delayed-commit mode, with
its commit queue, adaptive daemon pool, compound controller and retrying
RPC stub -- runs here against real ``repro serve`` shard processes over
real TCP, writing real bytes into a shared volume file.

After the workload drains, the shards are shut down (each persists its
durable state to ``shard-<k>.json``) and the oracle subset runs on what
hit disk:

``exactly_once``
    Every ``(client, op_id)`` commit applied exactly once -- the §III
    duplicate-suppression guarantee, exercised for real when the server
    runs with ``--drop-every`` (forced retransmissions).
``shard_ownership``
    Every file id lives in its arithmetic residue class; every extent
    inside its shard's volume slice.
``disjointness``
    No volume byte claimed committed by two extents anywhere.
``fsck``
    The committed namespace rebuilds into a clean allocator
    (:func:`repro.consistency.fsck.fsck` on reconstructed state).
``data_pattern``
    The volume file holds each file's deterministic pattern across every
    committed extent: data was durable before its commit -- the paper's
    ordered-write invariant verified on real sockets and a real file.
``expectations``
    Client-side bookkeeping (files created, sizes written, unlinks)
    matches the server's durable namespace.
"""

from __future__ import annotations

import asyncio
import json
import os
import typing as _t

from repro.client.client import RedbudClient
from repro.consistency.fsck import fsck, rebuild_free_space
from repro.mds.allocation import SpaceManager
from repro.mds.extent import Extent
from repro.mds.namespace import FileMeta, Namespace
from repro.mds.sharding import ShardRouter
from repro.net.rpc import RetryPolicy, RpcClient
from repro.rt.disk import RtBlockDevice, pattern_byte
from repro.rt.effects import AsyncioEffects
from repro.rt.transport import RtClusterTransport, ctl_request
from repro.util.intervals import IntervalSet
from repro.util.rng import StreamRNG

__all__ = ["SmokeConfig", "run_smoke", "run_oracles"]


class SmokeConfig:
    """Parameters of one smoke run."""

    def __init__(
        self,
        addresses: _t.Sequence[_t.Tuple[str, int]],
        data_dir: str,
        shards: int,
        volume_size: int,
        clients: int = 4,
        files_per_client: int = 6,
        file_size: int = 32 * 1024,
        seed: int = 11,
        compound_degree: int = 4,
        timeout: float = 120.0,
    ) -> None:
        self.addresses = list(addresses)
        self.data_dir = data_dir
        self.shards = shards
        self.volume_size = volume_size
        self.clients = clients
        self.files_per_client = files_per_client
        self.file_size = file_size
        self.seed = seed
        self.compound_degree = compound_degree
        self.timeout = timeout

    @property
    def volume_path(self) -> str:
        return os.path.join(self.data_dir, "volume.img")


def _workload(
    client: RedbudClient,
    config: SmokeConfig,
    expect: _t.Dict[int, int],
) -> _t.Generator:
    """One client's script: create, write, overwrite, fsync, unlink."""
    file_ids: _t.List[int] = []
    size = config.file_size
    for index in range(config.files_per_client):
        name = f"c{client.client_id}-f{index}"
        file_id = yield from client.create(name)
        file_ids.append(file_id)
        yield from client.write(file_id, 0, size)
        expect[file_id] = size
        if index % 3 == 0:
            # Overwrite the first half: exercises extent displacement
            # and the defensive in-place commit rule on a live server.
            yield from client.write(file_id, 0, size // 2)
        yield from client.fsync(file_id)
    for index, file_id in enumerate(file_ids):
        if index % 4 == 3:
            yield from client.unlink(file_id)
            del expect[file_id]
    yield from client.shutdown()


async def run_smoke(config: SmokeConfig) -> _t.Dict[str, _t.Any]:
    """Drive the workload, shut the shards down, audit the dumps."""
    env = AsyncioEffects(asyncio.get_running_loop())
    router = ShardRouter(num_shards=config.shards)
    blockdev = RtBlockDevice(
        env, config.volume_path, config.volume_size
    )
    transport = await RtClusterTransport.connect(
        env, config.addresses, router
    )
    rng = StreamRNG(config.seed)
    expectations: _t.Dict[int, int] = {}
    clients: _t.List[RedbudClient] = []
    try:
        for client_id in range(1, config.clients + 1):
            rpc = RpcClient(
                env,
                client_id,
                transport,
                retry=RetryPolicy(
                    base_timeout=0.5,
                    max_timeout=2.0,
                    max_attempts=30,
                ),
                retry_rng=rng.stream("retry", client_id),
            )
            clients.append(
                RedbudClient(
                    env,
                    client_id,
                    rpc,
                    blockdev,
                    commit_mode="delayed",
                    fixed_compound_degree=config.compound_degree,
                    shard_of_file=router.shard_of_file,
                    num_shards=config.shards,
                )
            )
        procs = [
            env.process(
                _workload(client, config, expectations),
                name=f"smoke-client-{client.client_id}",
            )
            for client in clients
        ]
        await asyncio.wait_for(
            env.wait(env.all_of(procs)), config.timeout
        )
        env.check_failures()

        stats = []
        for host, port in config.addresses:
            stats.append(
                await ctl_request(host, port, {"op": "stats"})
            )
        dumps = []
        for host, port in config.addresses:
            reply = await ctl_request(host, port, {"op": "shutdown"})
            if not reply.get("ok"):
                raise RuntimeError(f"shard shutdown failed: {reply!r}")
        for shard in range(config.shards):
            dump_path = os.path.join(
                config.data_dir, f"shard-{shard}.json"
            )
            with open(dump_path) as handle:
                dumps.append(json.load(handle))
    finally:
        await transport.aclose()
        blockdev.close()

    report = run_oracles(
        dumps, config.volume_path, expectations, config
    )
    report["shard_stats"] = stats
    report["client_stats"] = [
        {
            "client_id": client.client_id,
            "writes": client.writes,
            "bytes_written": client.bytes_written,
            "rpc_calls": client.rpc.calls_sent,
            "rpc_retries": client.rpc.retries,
            "rpc_timeouts": client.rpc.timeouts,
            "degraded_writes": client.degraded_writes,
        }
        for client in clients
    ]
    return report


def run_oracles(
    dumps: _t.Sequence[_t.Dict[str, _t.Any]],
    volume_path: str,
    expectations: _t.Dict[int, int],
    config: SmokeConfig,
) -> _t.Dict[str, _t.Any]:
    """The oracle subset over persisted shard state; pure, testable."""
    oracles: _t.Dict[str, _t.List[str]] = {
        "exactly_once": [],
        "shard_ownership": [],
        "disjointness": [],
        "fsck": [],
        "data_pattern": [],
        "expectations": [],
    }

    committed = IntervalSet()
    seen_files: _t.Dict[int, _t.Dict[str, _t.Any]] = {}
    for dump in dumps:
        shard = dump["shard"]
        shards = dump["shards"]
        base = dump["base_offset"]
        top = base + dump["slice_size"]

        for client_id, op_id, count in dump["commit_apply_counts"]:
            if count != 1:
                oracles["exactly_once"].append(
                    f"shard {shard}: commit (client={client_id}, "
                    f"op={op_id}) applied {count} times"
                )

        for entry in dump["files"]:
            file_id = entry["file_id"]
            seen_files[file_id] = entry
            if (file_id - 1) % shards != shard:
                oracles["shard_ownership"].append(
                    f"file {file_id} persisted by shard {shard}, owner "
                    f"is {(file_id - 1) % shards}"
                )
            for fo, length, _dev, vo, state in entry["extents"]:
                if state != "committed":
                    oracles["fsck"].append(
                        f"file {file_id} extent at {fo} persisted in "
                        f"state {state!r}"
                    )
                if vo < base or vo + length > top:
                    oracles["shard_ownership"].append(
                        f"file {file_id} extent [{vo}, {vo + length}) "
                        f"escapes shard {shard}'s slice [{base}, {top})"
                    )
                if committed.overlaps(vo, vo + length):
                    oracles["disjointness"].append(
                        f"volume range [{vo}, {vo + length}) of file "
                        f"{file_id} overlaps another committed extent"
                    )
                committed.add(vo, vo + length)

        # fsck on reconstructed durable state: the committed namespace
        # must rebuild into a clean allocator (no overlap, no escape).
        namespace = Namespace(first_id=shard + 1, id_step=shards)
        for entry in dump["files"]:
            meta = FileMeta(
                file_id=entry["file_id"],
                name=entry["name"],
                ctime=entry["ctime"],
                mtime=entry["mtime"],
                size=entry["size"],
                extents=[
                    Extent(
                        file_offset=fo,
                        length=length,
                        device_id=dev,
                        volume_offset=vo,
                        state=state,
                    )
                    for fo, length, dev, vo, state in entry["extents"]
                ],
            )
            namespace._files[meta.file_id] = meta
            namespace._by_name[meta.name] = meta.file_id
        space = SpaceManager(
            volume_size=dump["slice_size"],
            base_offset=base,
            num_groups=4,
        )
        try:
            rebuilt = rebuild_free_space(namespace, space)
        except ValueError as exc:
            oracles["fsck"].append(f"shard {shard}: rebuild failed: {exc}")
        else:
            report = fsck(namespace, rebuilt)
            if not report.clean:
                oracles["fsck"].append(
                    f"shard {shard}: {report.summary()}"
                )

    # Ordered writes made real: every committed extent's bytes must
    # already be the owning file's pattern in the volume file.
    if os.path.exists(volume_path):
        with open(volume_path, "rb") as handle:
            for file_id, entry in sorted(seen_files.items()):
                want = pattern_byte(file_id)
                for fo, length, _dev, vo, _state in entry["extents"]:
                    handle.seek(vo)
                    data = handle.read(length)
                    if len(data) < length or any(
                        b != want for b in data
                    ):
                        oracles["data_pattern"].append(
                            f"file {file_id} extent [{vo}, "
                            f"{vo + length}) does not hold pattern "
                            f"byte {want}"
                        )
                        break
    else:
        oracles["data_pattern"].append(
            f"volume file {volume_path} missing"
        )

    for file_id, size in sorted(expectations.items()):
        entry = seen_files.get(file_id)
        if entry is None:
            oracles["expectations"].append(
                f"file {file_id} committed by a client but absent "
                "from every shard dump"
            )
        elif entry["size"] != size:
            oracles["expectations"].append(
                f"file {file_id} persisted size {entry['size']}, "
                f"client expected {size}"
            )
    for file_id in sorted(seen_files):
        if file_id not in expectations:
            oracles["expectations"].append(
                f"file {file_id} persisted but never expected "
                "(unlinked or foreign)"
            )

    violations = sum(len(v) for v in oracles.values())
    return {
        "ok": violations == 0,
        "violations": violations,
        "oracles": oracles,
        "files_persisted": len(seen_files),
        "files_expected": len(expectations),
        "committed_bytes": committed.total(),
        "config": {
            "shards": config.shards,
            "clients": config.clients,
            "files_per_client": config.files_per_client,
            "file_size": config.file_size,
            "seed": config.seed,
        },
    }
