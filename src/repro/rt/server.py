"""One live metadata shard: the simulator's MDS on a real TCP socket.

``repro serve`` runs one of these per shard process.  The server object
is the *unmodified* :class:`repro.mds.server.MetadataServer` -- same
daemon loops, same namespace lock, same exactly-once commit table,
same reply cache -- running on :class:`repro.rt.AsyncioEffects` instead
of the virtual calendar.  Only the edges are substrate-specific:

- a per-connection reader decodes request frames (:mod:`repro.net.wire`)
  and drops them into the server's :class:`~repro.net.rpc.RpcServerPort`
  inbox, exactly where the simulated uplink would;
- a per-connection reply transport (registered with the port under the
  requesting client's id, the rt analogue of
  :meth:`RpcServerPort.register`) frames replies back down the same
  socket;
- a ``ctl`` channel answers ping/stats and performs the shutdown dump.

On shutdown the shard persists its durable state -- namespace, commit
apply counts, oplog, orphan books -- to ``shard-<k>.json`` in the data
directory.  That file is the ground truth ``repro smoke``'s oracles
audit: exactly-once, shard disjointness, fsck, and on-disk data
patterns all run against it.

``--drop-every N`` makes the shard deliberately drop every Nth request
frame *before* delivery, forcing real retransmissions through the
client's retry machinery so the smoke run exercises duplicate
suppression on real sockets.
"""

from __future__ import annotations

import asyncio
import json
import typing as _t

from repro.mds.allocation import SpaceManager
from repro.mds.namespace import Namespace
from repro.mds.server import MdsParameters, MetadataServer
from repro.net.rpc import RpcServerPort
from repro.net.wire import (
    FrameDecoder,
    FrameError,
    encode_frame,
    request_from_wire,
    result_to_wire,
)
from repro.core.kernel.events import Event
from repro.rt.effects import AsyncioEffects

__all__ = ["ShardConfig", "serve_shard", "dump_shard_state"]


class ShardConfig:
    """Everything one shard process needs to know."""

    def __init__(
        self,
        shard: int,
        shards: int,
        data_dir: str,
        port: int = 0,
        host: str = "127.0.0.1",
        volume_size: int = 256 * 1024 * 1024,
        num_daemons: int = 4,
        drop_every: int = 0,
    ) -> None:
        if not 0 <= shard < shards:
            raise ValueError(f"shard {shard} out of range for {shards}")
        self.shard = shard
        self.shards = shards
        self.data_dir = data_dir
        self.port = port
        self.host = host
        self.volume_size = volume_size
        self.num_daemons = num_daemons
        self.drop_every = drop_every

    @property
    def slice_size(self) -> int:
        return self.volume_size // self.shards

    @property
    def base_offset(self) -> int:
        return self.shard * self.slice_size

    @property
    def dump_path(self) -> str:
        import os

        return os.path.join(self.data_dir, f"shard-{self.shard}.json")


def build_shard_server(
    env: AsyncioEffects, config: ShardConfig
) -> MetadataServer:
    """Assemble the shard's MDS exactly like the simulator factory does:
    namespace ids in the shard's residue class, space from the shard's
    disjoint volume slice."""
    namespace = Namespace(
        first_id=config.shard + 1, id_step=config.shards
    )
    space = SpaceManager(
        volume_size=config.slice_size,
        base_offset=config.base_offset,
        num_groups=4,
    )
    port = RpcServerPort(env)
    params = MdsParameters(
        num_daemons=config.num_daemons, shards=config.shards
    )
    return MetadataServer(
        env, params, namespace, space, port, downlinks={}
    )


def dump_shard_state(
    server: MetadataServer, config: ShardConfig
) -> _t.Dict[str, _t.Any]:
    """The shard's durable state, JSON-shaped (the smoke oracles' input)."""
    namespace = server.namespace
    files = [
        {
            "file_id": meta.file_id,
            "name": meta.name,
            "ctime": meta.ctime,
            "mtime": meta.mtime,
            "size": meta.size,
            "extents": [
                [e.file_offset, e.length, e.device_id, e.volume_offset, e.state]
                for e in meta.extents
            ],
        }
        for meta in sorted(
            namespace._files.values(), key=lambda m: m.file_id
        )
    ]
    return {
        "shard": config.shard,
        "shards": config.shards,
        "volume_size": config.volume_size,
        "slice_size": config.slice_size,
        "base_offset": config.base_offset,
        "files": files,
        "commit_apply_counts": [
            [client_id, op_id, count]
            for (client_id, op_id), count in sorted(
                server.commit_apply_counts.items()
            )
        ],
        "oplog_len": len(server.oplog),
        "uncommitted": {
            str(client_id): [[start, end] for start, end in ranges]
            for client_id, ranges in server.space._uncommitted.items()
        },
        "stats": {
            "requests_processed": server.requests_processed,
            "ops_processed": server.ops_processed,
            "duplicate_requests_suppressed": (
                server.duplicate_requests_suppressed
            ),
            "duplicate_commits_suppressed": (
                server.duplicate_commits_suppressed
            ),
            "stale_commits": server.stale_commits,
            "free_bytes": server.space.free_bytes,
            "files": len(namespace),
        },
    }


class _ConnReplyTransport:
    """Reply path for one client connection (``RpcServerPort.reply``
    routes through whatever transport is registered per client id)."""

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer

    def send_reply(self, message: _t.Any) -> None:
        if self.writer.is_closing():
            # Client went away: the reply is lost on the wire, exactly
            # like a downlink drop; the client's retry recovers it.
            return
        self.writer.write(
            encode_frame(
                {
                    "frame": "reply",
                    "client_id": message.client_id,
                    "xid": message.xid,
                    "result": result_to_wire(message.result),
                }
            )
        )


async def serve_shard(
    config: ShardConfig,
    ready: _t.Optional[_t.Callable[[int], None]] = None,
) -> _t.Dict[str, _t.Any]:
    """Run one shard until a ctl shutdown arrives; returns its dump."""
    env = AsyncioEffects(asyncio.get_running_loop())
    server = build_shard_server(env, config)
    stop = asyncio.Event()
    request_counter = [0]
    dropped = [0]

    async def handle_connection(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        decoder = FrameDecoder()
        reply_transport = _ConnReplyTransport(writer)
        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    return
                try:
                    frames = decoder.feed(data)
                except FrameError:
                    # Corrupt stream: nothing after this point can be
                    # trusted; sever the connection.
                    return
                for frame in frames:
                    kind = frame.get("frame")
                    if kind == "request":
                        request_counter[0] += 1
                        if (
                            config.drop_every
                            and request_counter[0] % config.drop_every == 0
                        ):
                            dropped[0] += 1
                            continue
                        message = request_from_wire(frame, Event(env))
                        server.port.register(
                            message.client_id, reply_transport
                        )
                        server.port.deliver(message)
                    elif kind == "ctl":
                        await handle_ctl(frame, writer)
                    # Unknown frames are ignored (forward compatibility).
        except (asyncio.CancelledError, ConnectionError):
            return
        finally:
            try:
                writer.close()
            except (ConnectionError, OSError):
                pass

    async def handle_ctl(
        frame: _t.Dict[str, _t.Any], writer: asyncio.StreamWriter
    ) -> None:
        op = frame.get("op")
        if op == "ping":
            reply: _t.Dict[str, _t.Any] = {"ok": True, "shard": config.shard}
        elif op == "stats":
            reply = {
                "ok": True,
                "shard": config.shard,
                "stats": dump_shard_state(server, config)["stats"],
                "requests_dropped": dropped[0],
            }
        elif op == "shutdown":
            dump = dump_shard_state(server, config)
            dump["requests_dropped"] = dropped[0]
            with open(config.dump_path, "w") as handle:
                json.dump(dump, handle, indent=1, sort_keys=True)
            reply = {"ok": True, "shard": config.shard, "dump": config.dump_path}
            stop.set()
        else:
            reply = {"ok": False, "error": f"unknown ctl op {op!r}"}
        writer.write(encode_frame(reply))
        await writer.drain()

    tcp_server = await asyncio.start_server(
        handle_connection, config.host, config.port
    )
    actual_port = tcp_server.sockets[0].getsockname()[1]
    if ready is not None:
        ready(actual_port)
    try:
        await stop.wait()
    finally:
        tcp_server.close()
        await tcp_server.wait_closed()
    env.check_failures()
    return dump_shard_state(server, config)
