"""Reproduction of the Delayed Commit Protocol (CLUSTER 2012).

This package reproduces *"Accelerating Distributed Updates with
Asynchronous Ordered Writes in a Parallel File System"* (Lu, Shu, Li, Yi
-- CLUSTER 2012) as a deterministic discrete-event simulation of the
Redbud block-based parallel file system.

Subpackages
-----------
``repro.sim``
    Discrete-event simulation kernel (virtual clock, processes, resources).
``repro.storage``
    Disk-array model, elevator I/O schedulers with request merging, page
    cache, blktrace-style tracing.
``repro.net``
    Network links, RPC layer, compound RPC envelopes.
``repro.mds``
    Metadata server: namespace, allocation groups with B+ tree free-space
    management, daemon-thread service model.
``repro.client``
    Redbud client: layout-get / commit RPC paths, direct data path.
``repro.core``
    The paper's contribution: the Delayed Commit Protocol, the adaptive
    commit-thread pool, adaptive RPC compounding, and space delegation.
``repro.fs``
    Whole-cluster assemblies: Redbud in its three configurations plus the
    NFS3 and PVFS2 behavioural baselines.
``repro.consistency``
    Ordered-writes invariant checking, crash injection and recovery.
``repro.workloads``
    The paper's benchmarks: filebench personalities (fileserver, varmail,
    webproxy), xcdn, and an NPB BT-IO-like parallel workload.
``repro.analysis``
    Metric accumulation, merge-ratio computation, time-series sampling and
    table rendering used by the benchmark harness.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
