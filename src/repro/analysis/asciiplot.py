"""ASCII rendering of the paper's figure types.

The benches print these next to their numeric tables so the plots of
Fig. 5 (address-over-time scatter) and Fig. 6 (two series over time) can
be eyeballed directly in the pytest output, without a plotting stack.
"""

from __future__ import annotations

import typing as _t

import numpy as np


def scatter(
    xs: _t.Sequence[float],
    ys: _t.Sequence[float],
    width: int = 72,
    height: int = 16,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render an x/y scatter as an ASCII grid (Fig. 5 panels).

    Density shading: ``.`` one point, ``+`` a few, ``#`` many per cell.
    """
    if width < 8 or height < 4:
        raise ValueError("plot area too small")
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    lines: _t.List[str] = []
    if title:
        lines.append(title)
    if xs.size == 0:
        lines.append("(no data)")
        return "\n".join(lines)

    x0, x1 = float(xs.min()), float(xs.max())
    y0, y1 = float(ys.min()), float(ys.max())
    x_span = (x1 - x0) or 1.0
    y_span = (y1 - y0) or 1.0
    counts = np.zeros((height, width), dtype=int)
    cols = np.minimum(
        ((xs - x0) / x_span * (width - 1)).astype(int), width - 1
    )
    rows = np.minimum(
        ((ys - y0) / y_span * (height - 1)).astype(int), height - 1
    )
    np.add.at(counts, (rows, cols), 1)

    dense = max(2, int(counts.max()) // 4)
    for r in range(height - 1, -1, -1):
        chars = []
        for c in range(width):
            n = counts[r, c]
            if n == 0:
                chars.append(" ")
            elif n == 1:
                chars.append(".")
            elif n <= dense:
                chars.append("+")
            else:
                chars.append("#")
        prefix = f"{_si(y1) if r == height - 1 else _si(y0) if r == 0 else '':>8} |"
        lines.append(prefix + "".join(chars))
    lines.append(" " * 8 + "-" * (width + 1))
    footer = f"{_si(x0):>8} {x_label:^{max(0, width - 16)}}{_si(x1):>8}"
    lines.append(footer)
    if y_label:
        lines.append(f"(y: {y_label})")
    return "\n".join(lines)


def dual_series(
    times: _t.Sequence[float],
    a: _t.Sequence[float],
    b: _t.Sequence[float],
    a_label: str = "a",
    b_label: str = "b",
    width: int = 72,
    height: int = 12,
    title: str = "",
) -> str:
    """Render two series on one time axis (Fig. 6 panels).

    Series *a* plots as ``*`` against the left scale, series *b* as
    ``o`` against the right scale; collisions show ``@``.
    """
    times = np.asarray(times, dtype=float)
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    lines: _t.List[str] = []
    if title:
        lines.append(title)
    if times.size == 0:
        lines.append("(no data)")
        return "\n".join(lines)

    t0, t1 = float(times.min()), float(times.max())
    t_span = (t1 - t0) or 1.0
    a_max = float(a.max()) or 1.0
    b_max = float(b.max()) or 1.0

    grid = [[" "] * width for _ in range(height)]
    cols = np.minimum(
        ((times - t0) / t_span * (width - 1)).astype(int), width - 1
    )

    def plot(series, top, mark):
        rows = np.minimum(
            (series / top * (height - 1)).astype(int), height - 1
        )
        for col, row in zip(cols, rows):
            cell = grid[row][col]
            if cell == " ":
                grid[row][col] = mark
            elif cell != mark:
                grid[row][col] = "@"

    plot(a, a_max, "*")
    plot(b, b_max, "o")

    for r in range(height - 1, -1, -1):
        left = _si(a_max) if r == height - 1 else ("0" if r == 0 else "")
        right = _si(b_max) if r == height - 1 else ("0" if r == 0 else "")
        lines.append(f"{left:>6} |" + "".join(grid[r]) + f"| {right}")
    lines.append(" " * 6 + "-" * (width + 2))
    lines.append(
        f"{_si(t0):>6} {'time':^{max(0, width - 10)}}{_si(t1):>6}"
    )
    lines.append(f"(*: {a_label} -- left scale, o: {b_label} -- right scale)")
    return "\n".join(lines)


def _si(value: float) -> str:
    """Compact SI-ish number formatting for axis labels."""
    value = float(value)
    for factor, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "K")):
        if abs(value) >= factor:
            return f"{value / factor:.3g}{suffix}"
    if value == int(value):
        return str(int(value))
    return f"{value:.3g}"
