"""I/O merge-ratio computation (Fig. 4).

The merge ratio of one run is the number of submitted block requests per
dispatched disk operation, aggregated over every client's elevator queue.
An all-synchronous run dispatches every request individually (ratio 1.0);
delayed commit raises it; space delegation multiplies it further.
"""

from __future__ import annotations

import typing as _t

from repro.storage.scheduler import ElevatorScheduler, SchedulerStats


def aggregate_merge_ratio(
    schedulers: _t.Iterable[ElevatorScheduler],
) -> SchedulerStats:
    """Pool the per-client scheduler stats into one aggregate."""
    total = SchedulerStats()
    for scheduler in schedulers:
        scheduler.stats.merged_into(total)
    return total


def write_merge_ratio(
    schedulers: _t.Iterable[ElevatorScheduler],
) -> float:
    """Convenience: the pooled submitted/dispatched ratio."""
    return aggregate_merge_ratio(schedulers).merge_ratio
