"""Fixed-width table rendering shared by the benchmark harness.

The benches print their reproduction of each paper table/figure with
these tables so ``pytest benchmarks/ --benchmark-only`` output can be
compared against the paper side by side (see EXPERIMENTS.md).
"""

from __future__ import annotations

import typing as _t


class Table:
    """A simple fixed-width text table."""

    def __init__(self, headers: _t.Sequence[str], title: str = "") -> None:
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: _t.List[_t.List[str]] = []

    def add_row(self, *cells: _t.Any) -> "Table":
        if len(cells) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} cells, got {len(cells)}"
            )
        self.rows.append([_fmt(c) for c in cells])
        return self

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines: _t.List[str] = []
        if self.title:
            lines.append(self.title)
        sep = "-+-".join("-" * w for w in widths)
        lines.append(
            " | ".join(h.ljust(w) for h, w in zip(self.headers, widths))
        )
        lines.append(sep)
        for row in self.rows:
            lines.append(
                " | ".join(c.ljust(w) for c, w in zip(row, widths))
            )
        return "\n".join(lines)

    def print(self) -> None:
        print()
        print(self.render())


def _fmt(cell: _t.Any) -> str:
    if isinstance(cell, float):
        if cell != 0 and abs(cell) < 0.01:
            return f"{cell:.2e}"
        return f"{cell:.2f}"
    return str(cell)
