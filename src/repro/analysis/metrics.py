"""Operation-level metric accumulation.

Each workload thread records every completed operation here; the harness
then reads ops/sec, per-type latency percentiles, and byte throughput --
the quantities behind the Fig. 3 normalised-performance bars.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class LatencyStats:
    """Summary of a latency sample set (seconds)."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    max: float

    @classmethod
    def from_samples(cls, samples: _t.Sequence[float]) -> "LatencyStats":
        if not samples:
            return cls(0, 0.0, 0.0, 0.0, 0.0, 0.0)
        arr = np.asarray(samples, dtype=float)
        return cls(
            count=len(arr),
            mean=float(arr.mean()),
            p50=float(np.percentile(arr, 50)),
            p95=float(np.percentile(arr, 95)),
            p99=float(np.percentile(arr, 99)),
            max=float(arr.max()),
        )


class OpMetrics:
    """Accumulates (op type, latency, bytes) tuples during a run."""

    def __init__(self) -> None:
        self._latencies: _t.Dict[str, _t.List[float]] = {}
        self._bytes: _t.Dict[str, int] = {}
        self._counts: _t.Dict[str, int] = {}
        self.start_time: _t.Optional[float] = None
        self.end_time: _t.Optional[float] = None

    def record(
        self, op: str, latency: float, nbytes: int = 0, now: float = 0.0
    ) -> None:
        if latency < 0:
            raise ValueError(f"negative latency {latency}")
        self._latencies.setdefault(op, []).append(latency)
        self._counts[op] = self._counts.get(op, 0) + 1
        self._bytes[op] = self._bytes.get(op, 0) + nbytes
        # The window start is the earliest op *start*, not the start of
        # whichever op happened to complete first: a long op finishing
        # late can still have begun before every earlier completion.
        start = now - latency
        if self.start_time is None or start < self.start_time:
            self.start_time = start
        if self.end_time is None or now > self.end_time:
            self.end_time = now

    # -- aggregate views ----------------------------------------------------

    @property
    def total_ops(self) -> int:
        return sum(self._counts.values())

    @property
    def total_bytes(self) -> int:
        return sum(self._bytes.values())

    def count(self, op: str) -> int:
        return self._counts.get(op, 0)

    def bytes_for(self, op: str) -> int:
        return self._bytes.get(op, 0)

    def op_types(self) -> _t.List[str]:
        return sorted(self._counts)

    def latency(self, op: _t.Optional[str] = None) -> LatencyStats:
        """Latency stats for one op type, or pooled across all."""
        if op is not None:
            return LatencyStats.from_samples(self._latencies.get(op, []))
        pooled: _t.List[float] = []
        for samples in self._latencies.values():
            pooled.extend(samples)
        return LatencyStats.from_samples(pooled)

    def ops_per_second(self, duration: _t.Optional[float] = None) -> float:
        d = duration if duration is not None else self.elapsed()
        return self.total_ops / d if d > 0 else 0.0

    def bytes_per_second(self, duration: _t.Optional[float] = None) -> float:
        d = duration if duration is not None else self.elapsed()
        return self.total_bytes / d if d > 0 else 0.0

    def elapsed(self) -> float:
        if self.start_time is None or self.end_time is None:
            return 0.0
        return self.end_time - self.start_time

    def merge_from(self, other: "OpMetrics") -> None:
        """Fold another accumulator (e.g. another client's) into this one."""
        for op, samples in other._latencies.items():
            self._latencies.setdefault(op, []).extend(samples)
        for op, count in other._counts.items():
            self._counts[op] = self._counts.get(op, 0) + count
        for op, nbytes in other._bytes.items():
            self._bytes[op] = self._bytes.get(op, 0) + nbytes
        if other.start_time is not None:
            self.start_time = (
                other.start_time
                if self.start_time is None
                else min(self.start_time, other.start_time)
            )
        if other.end_time is not None:
            self.end_time = (
                other.end_time
                if self.end_time is None
                else max(self.end_time, other.end_time)
            )
