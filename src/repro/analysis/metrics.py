"""Operation-level metric accumulation.

Each workload thread records every completed operation here; the harness
then reads ops/sec, per-type latency percentiles, and byte throughput --
the quantities behind the Fig. 3 normalised-performance bars.

Latencies accumulate into log-bucketed quantile histograms
(:class:`repro.obs.registry.Histogram`, ~1% relative error) instead of
per-sample lists, so p50/p90/p99/p999 stay readable from O(buckets)
memory however long the run -- the tail-latency substrate of the SLO
layer (DESIGN §12).  Samples are additionally bucketed into
fixed-interval virtual-time *windows* (:attr:`OpMetrics.window`), which
is what lets :class:`repro.obs.slo.Timeline` report tails per window and
excuse windows where a fault was live.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass

from repro.obs.registry import Histogram


@dataclass(frozen=True)
class LatencyStats:
    """Summary of a latency sample set (seconds)."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    max: float
    p90: float = 0.0
    p999: float = 0.0

    @classmethod
    def from_histogram(cls, hist: Histogram) -> "LatencyStats":
        if hist.count == 0:
            return cls(0, 0.0, 0.0, 0.0, 0.0, 0.0)
        return cls(
            count=hist.count,
            mean=hist.mean,
            p50=hist.quantile(0.50),
            p95=hist.quantile(0.95),
            p99=hist.quantile(0.99),
            max=float(hist.max),
            p90=hist.quantile(0.90),
            p999=hist.quantile(0.999),
        )

    @classmethod
    def from_samples(cls, samples: _t.Sequence[float]) -> "LatencyStats":
        hist = Histogram("samples")
        for sample in samples:
            hist.observe(sample)
        return cls.from_histogram(hist)

    def as_dict(self) -> _t.Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p90": self.p90,
            "p95": self.p95,
            "p99": self.p99,
            "p999": self.p999,
            "max": self.max,
        }


class OpMetrics:
    """Accumulates (op type, latency, bytes) tuples during a run."""

    #: Timeline window width (virtual seconds) for per-window latency
    #: histograms.  All accumulators merged together must agree on it.
    WINDOW = 0.25

    def __init__(self, window: float = WINDOW) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.window = window
        self._hists: _t.Dict[str, Histogram] = {}
        #: window index -> op type -> latency histogram.
        self._window_hists: _t.Dict[int, _t.Dict[str, Histogram]] = {}
        self._bytes: _t.Dict[str, int] = {}
        self._counts: _t.Dict[str, int] = {}
        self.start_time: _t.Optional[float] = None
        self.end_time: _t.Optional[float] = None

    def record(
        self, op: str, latency: float, nbytes: int = 0, now: float = 0.0
    ) -> None:
        if latency < 0:
            raise ValueError(f"negative latency {latency}")
        hist = self._hists.get(op)
        if hist is None:
            hist = self._hists[op] = Histogram(op)
        hist.observe(latency)
        windows = self._window_hists.setdefault(int(now / self.window), {})
        whist = windows.get(op)
        if whist is None:
            whist = windows[op] = Histogram(op)
        whist.observe(latency)
        self._counts[op] = self._counts.get(op, 0) + 1
        self._bytes[op] = self._bytes.get(op, 0) + nbytes
        # The window start is the earliest op *start*, not the start of
        # whichever op happened to complete first: a long op finishing
        # late can still have begun before every earlier completion.
        start = now - latency
        if self.start_time is None or start < self.start_time:
            self.start_time = start
        if self.end_time is None or now > self.end_time:
            self.end_time = now

    # -- aggregate views ----------------------------------------------------

    @property
    def total_ops(self) -> int:
        return sum(self._counts.values())

    @property
    def total_bytes(self) -> int:
        return sum(self._bytes.values())

    def count(self, op: str) -> int:
        return self._counts.get(op, 0)

    def bytes_for(self, op: str) -> int:
        return self._bytes.get(op, 0)

    def op_types(self) -> _t.List[str]:
        return sorted(self._counts)

    def histogram(self, op: _t.Optional[str] = None) -> Histogram:
        """The quantile histogram for one op type, or pooled over all."""
        if op is not None:
            return self._hists.get(op, Histogram(op))
        pooled = Histogram("all")
        for hist in self._hists.values():
            pooled.merge_from(hist)
        return pooled

    def latency(self, op: _t.Optional[str] = None) -> LatencyStats:
        """Latency stats for one op type, or pooled across all."""
        return LatencyStats.from_histogram(self.histogram(op))

    def window_histograms(
        self,
    ) -> _t.List[_t.Tuple[int, _t.Dict[str, Histogram]]]:
        """(window index, op -> histogram) pairs in window order."""
        return sorted(self._window_hists.items())

    def ops_per_second(self, duration: _t.Optional[float] = None) -> float:
        d = duration if duration is not None else self.elapsed()
        return self.total_ops / d if d > 0 else 0.0

    def bytes_per_second(self, duration: _t.Optional[float] = None) -> float:
        d = duration if duration is not None else self.elapsed()
        return self.total_bytes / d if d > 0 else 0.0

    def elapsed(self) -> float:
        if self.start_time is None or self.end_time is None:
            return 0.0
        return self.end_time - self.start_time

    def merge_from(self, other: "OpMetrics") -> None:
        """Fold another accumulator (e.g. another client's) into this one."""
        if other.window != self.window:
            raise ValueError(
                f"window mismatch: {self.window} vs {other.window}"
            )
        for op, hist in other._hists.items():
            mine = self._hists.get(op)
            if mine is None:
                mine = self._hists[op] = Histogram(op)
            mine.merge_from(hist)
        for index, per_op in other._window_hists.items():
            windows = self._window_hists.setdefault(index, {})
            for op, hist in per_op.items():
                mine = windows.get(op)
                if mine is None:
                    mine = windows[op] = Histogram(op)
                mine.merge_from(hist)
        for op, count in other._counts.items():
            self._counts[op] = self._counts.get(op, 0) + count
        for op, nbytes in other._bytes.items():
            self._bytes[op] = self._bytes.get(op, 0) + nbytes
        if other.start_time is not None:
            self.start_time = (
                other.start_time
                if self.start_time is None
                else min(self.start_time, other.start_time)
            )
        if other.end_time is not None:
            self.end_time = (
                other.end_time
                if self.end_time is None
                else max(self.end_time, other.end_time)
            )
