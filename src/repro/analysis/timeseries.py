"""Sampled time series (Fig. 6: commit threads vs. queue length)."""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass

import numpy as np


class TimeSeries:
    """A (time, value) series with summary helpers."""

    def __init__(
        self, points: _t.Iterable[_t.Tuple[float, float]] = ()
    ) -> None:
        self._times: _t.List[float] = []
        self._values: _t.List[float] = []
        for t, v in points:
            self.append(t, v)

    def append(self, time: float, value: float) -> None:
        if self._times and time < self._times[-1]:
            raise ValueError("time series must be appended in order")
        self._times.append(time)
        self._values.append(value)

    def __len__(self) -> int:
        return len(self._times)

    @property
    def times(self) -> np.ndarray:
        return np.asarray(self._times, dtype=float)

    @property
    def values(self) -> np.ndarray:
        return np.asarray(self._values, dtype=float)

    def mean(self) -> float:
        return float(np.mean(self._values)) if self._values else 0.0

    def max(self) -> float:
        return float(np.max(self._values)) if self._values else 0.0

    def min(self) -> float:
        return float(np.min(self._values)) if self._values else 0.0

    def fraction_at(self, value: float) -> float:
        """Fraction of samples exactly at ``value`` (e.g. pinned at max)."""
        if not self._values:
            return 0.0
        arr = np.asarray(self._values)
        return float(np.mean(arr == value))

    def bucketed(self, bucket: float) -> _t.List[_t.Tuple[float, float]]:
        """Mean value per time bucket -- for compact ASCII plots."""
        if not self._times:
            return []
        out: _t.List[_t.Tuple[float, float]] = []
        t0 = self._times[0]
        acc: _t.List[float] = []
        edge = t0 + bucket
        for t, v in zip(self._times, self._values):
            if t >= edge:
                if acc:
                    out.append((edge - bucket, float(np.mean(acc))))
                while t >= edge:
                    edge += bucket
                acc = []
            acc.append(v)
        if acc:
            out.append((edge - bucket, float(np.mean(acc))))
        return out


@dataclass(frozen=True)
class PoolSummary:
    """Digest of an adaptive-pool sample trace (one Fig. 6 panel)."""

    samples: int
    mean_threads: float
    max_threads: int
    mean_queue: float
    max_queue: int
    fraction_at_max_threads: float
    #: Pearson correlation between thread count and queue length; the
    #: paper's claim is that threads *track* queue length, i.e. this is
    #: clearly positive for bursty workloads.
    thread_queue_correlation: float


def summarize_pool_samples(
    samples: _t.Sequence[_t.Tuple[float, int, int]],
    max_threads: int,
) -> PoolSummary:
    """Summarise (time, threads, queue_len) samples from the pool."""
    if not samples:
        return PoolSummary(0, 0.0, 0, 0.0, 0, 0.0, 0.0)
    threads = np.asarray([s[1] for s in samples], dtype=float)
    queue = np.asarray([s[2] for s in samples], dtype=float)
    if threads.std() > 0 and queue.std() > 0:
        corr = float(np.corrcoef(threads, queue)[0, 1])
    else:
        corr = 0.0
    return PoolSummary(
        samples=len(samples),
        mean_threads=float(threads.mean()),
        max_threads=int(threads.max()),
        mean_queue=float(queue.mean()),
        max_queue=int(queue.max()),
        fraction_at_max_threads=float(np.mean(threads == max_threads)),
        thread_queue_correlation=corr,
    )
