"""Block-trace CSV export/import.

The Fig. 5 bench exports each run's trace so the panels can be
re-plotted offline; this module owns the format so traces round-trip
losslessly (and external blktrace-like data can be imported for the
same analyses).

Format: a header line followed by one dispatch per line::

    time,op,start,length,seek_distance,client,queued
"""

from __future__ import annotations

import typing as _t

from repro.storage.blktrace import BlkTrace, TraceRecord

HEADER = "time,op,start,length,seek_distance,client,queued"


def dump_trace(trace: BlkTrace, path: str) -> int:
    """Write ``trace`` to ``path``; returns the record count."""
    with open(path, "w") as fh:
        fh.write(HEADER + "\n")
        for r in trace.records:
            fh.write(
                f"{r.time!r},{r.op},{r.start},{r.length},"
                f"{r.seek_distance},{r.client_id},{r.queued}\n"
            )
    return len(trace.records)


def load_trace(path: str) -> BlkTrace:
    """Read a trace written by :func:`dump_trace`."""
    trace = BlkTrace()
    with open(path) as fh:
        header = fh.readline().strip()
        if header != HEADER:
            raise ValueError(
                f"unrecognised trace header {header!r} in {path}"
            )
        for lineno, line in enumerate(fh, start=2):
            line = line.strip()
            if not line:
                continue
            parts = line.split(",")
            if len(parts) != 7:
                raise ValueError(f"{path}:{lineno}: malformed row {line!r}")
            trace.records.append(
                TraceRecord(
                    time=float(parts[0]),
                    op=parts[1],
                    start=int(parts[2]),
                    length=int(parts[3]),
                    seek_distance=int(parts[4]),
                    client_id=int(parts[5]),
                    queued=int(parts[6]),
                )
            )
    return trace


def summarize_csv(path: str) -> _t.Dict[str, _t.Any]:
    """Load + analyse in one step (offline inspection helper)."""
    trace = load_trace(path)
    analysis = trace.analyze()
    return {
        "records": len(trace),
        "dispatches": analysis.dispatches,
        "seek_fraction": analysis.seek_fraction,
        "mean_seek_distance": analysis.mean_seek_distance,
        "mean_run_length": analysis.mean_run_length,
    }
