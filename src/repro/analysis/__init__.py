"""Metrics, merge-ratio computation, time series, and table rendering.

Everything the benchmark harness needs to turn a simulation run into the
rows and series the paper's tables and figures report.
"""

from repro.analysis.asciiplot import dual_series, scatter
from repro.analysis.mergeratio import aggregate_merge_ratio
from repro.analysis.metrics import LatencyStats, OpMetrics
from repro.analysis.report import Table
from repro.analysis.timeseries import TimeSeries, summarize_pool_samples

__all__ = [
    "LatencyStats",
    "OpMetrics",
    "Table",
    "TimeSeries",
    "aggregate_merge_ratio",
    "dual_series",
    "scatter",
    "summarize_pool_samples",
]
