"""Reproducible random-number streams.

Every stochastic component of the model (workload generators, disk
rotational latency, think times) draws from its own named child stream of
a single root seed, so adding a new consumer never perturbs the draws seen
by existing ones.  This is what keeps the benchmark figures stable from
run to run and across machines.

Lives in ``repro.util`` (not ``repro.sim``) because the protocol layer --
RPC retry jitter, the rt smoke workload -- needs seeded streams on either
substrate; :mod:`repro.sim.rng` re-exports for compatibility.
"""

from __future__ import annotations

import typing as _t

import numpy as np


class StreamRNG:
    """A seeded RNG that can be split into independent named streams.

    Parameters
    ----------
    seed:
        Root seed, or another :class:`StreamRNG` / ``numpy`` seed sequence
        to derive from.

    Example
    -------
    >>> root = StreamRNG(42)
    >>> a = root.stream("disk")
    >>> b = root.stream("workload", 3)
    >>> a.uniform(0, 1) != b.uniform(0, 1)
    True
    """

    def __init__(
        self, seed: _t.Union[int, np.random.SeedSequence, "StreamRNG"] = 0
    ) -> None:
        if isinstance(seed, StreamRNG):
            self._seq = seed._seq
        elif isinstance(seed, np.random.SeedSequence):
            self._seq = seed
        else:
            self._seq = np.random.SeedSequence(int(seed))
        self._gen = np.random.Generator(np.random.PCG64(self._seq))

    def stream(self, *key: _t.Union[str, int]) -> "StreamRNG":
        """Derive an independent child stream identified by ``key``.

        The same ``(seed, key)`` pair always produces the same stream.
        """
        material = [_hash_token(token) for token in key]
        child = np.random.SeedSequence(
            entropy=self._seq.entropy,
            spawn_key=tuple(self._seq.spawn_key) + tuple(material),
        )
        return StreamRNG(child)

    # -- draws --------------------------------------------------------------

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        return float(self._gen.uniform(low, high))

    def integers(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high)``."""
        return int(self._gen.integers(low, high))

    def exponential(self, mean: float) -> float:
        return float(self._gen.exponential(mean))

    def normal(self, mean: float, std: float) -> float:
        return float(self._gen.normal(mean, std))

    def lognormal(self, mean: float, sigma: float) -> float:
        return float(self._gen.lognormal(mean, sigma))

    def pareto(self, shape: float, scale: float = 1.0) -> float:
        """Pareto draw with minimum ``scale`` (heavy-tailed file sizes)."""
        return float(scale * (1.0 + self._gen.pareto(shape)))

    def choice(self, seq: _t.Sequence[_t.Any]) -> _t.Any:
        if not seq:
            raise ValueError("cannot choose from an empty sequence")
        return seq[int(self._gen.integers(0, len(seq)))]

    def weighted_choice(
        self, items: _t.Sequence[_t.Any], weights: _t.Sequence[float]
    ) -> _t.Any:
        if len(items) != len(weights):
            raise ValueError("items and weights must have equal length")
        w = np.asarray(weights, dtype=float)
        total = w.sum()
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        idx = int(self._gen.choice(len(items), p=w / total))
        return items[idx]

    def shuffle(self, seq: _t.List[_t.Any]) -> None:
        self._gen.shuffle(seq)  # type: ignore[arg-type]

    def random(self) -> float:
        return float(self._gen.random())

    @property
    def generator(self) -> np.random.Generator:
        """The underlying numpy generator, for vectorised draws."""
        return self._gen


def _hash_token(token: _t.Union[str, int]) -> int:
    """Map a stream-key token to a stable 32-bit integer."""
    if isinstance(token, (int, np.integer)):
        return int(token) & 0xFFFFFFFF
    # Stable across processes (unlike built-in hash of str).
    acc = 2166136261
    for byte in str(token).encode("utf-8"):
        acc = ((acc ^ byte) * 16777619) & 0xFFFFFFFF
    return acc
