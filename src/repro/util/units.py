"""Human-readable formatting helpers for reports and examples."""

from __future__ import annotations


def fmt_bytes(n: float) -> str:
    """Format a byte count: ``fmt_bytes(32768) == '32.0KB'``."""
    value = float(n)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(value) < 1024.0 or unit == "TB":
            return f"{value:.1f}{unit}" if unit != "B" else f"{int(value)}B"
        value /= 1024.0
    raise AssertionError("unreachable")


def fmt_rate(bytes_per_sec: float) -> str:
    """Format a throughput: ``fmt_rate(2.6e6) == '2.48MB/s'``."""
    return f"{bytes_per_sec / (1024 * 1024):.2f}MB/s"


def fmt_time(seconds: float) -> str:
    """Format a duration with a sensible unit."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds:.2f}s"
