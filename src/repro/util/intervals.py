"""Half-open integer interval sets.

Used for page-cache residency tracking, extent-map bookkeeping and the
ordered-writes invariant checker.  Intervals are ``[start, end)`` byte
ranges; the set keeps them sorted, disjoint and coalesced.
"""

from __future__ import annotations

import bisect
import typing as _t


class IntervalSet:
    """A sorted set of disjoint half-open intervals ``[start, end)``."""

    __slots__ = ("_starts", "_ends")

    def __init__(
        self, intervals: _t.Iterable[_t.Tuple[int, int]] = ()
    ) -> None:
        self._starts: _t.List[int] = []
        self._ends: _t.List[int] = []
        for start, end in intervals:
            self.add(start, end)

    # -- mutation ---------------------------------------------------------

    def add(self, start: int, end: int) -> None:
        """Insert ``[start, end)``, coalescing with any overlap/adjacency."""
        if start >= end:
            if start == end:
                return  # Empty interval: no-op.
            raise ValueError(f"invalid interval [{start}, {end})")
        # Find all intervals overlapping or touching [start, end).
        lo = bisect.bisect_left(self._ends, start)
        hi = bisect.bisect_right(self._starts, end)
        if lo < hi:
            start = min(start, self._starts[lo])
            end = max(end, self._ends[hi - 1])
            del self._starts[lo:hi]
            del self._ends[lo:hi]
        self._starts.insert(lo, start)
        self._ends.insert(lo, end)

    def remove(self, start: int, end: int) -> None:
        """Delete ``[start, end)`` from the set (punching holes as needed)."""
        if start >= end:
            if start == end:
                return
            raise ValueError(f"invalid interval [{start}, {end})")
        lo = bisect.bisect_right(self._ends, start)
        new_starts: _t.List[int] = []
        new_ends: _t.List[int] = []
        i = lo
        while i < len(self._starts) and self._starts[i] < end:
            s, e = self._starts[i], self._ends[i]
            if s < start:
                new_starts.append(s)
                new_ends.append(start)
            if e > end:
                new_starts.append(end)
                new_ends.append(e)
            i += 1
        self._starts[lo:i] = new_starts
        self._ends[lo:i] = new_ends

    def clear(self) -> None:
        self._starts.clear()
        self._ends.clear()

    # -- queries -------------------------------------------------------------

    def contains(self, start: int, end: int) -> bool:
        """True if ``[start, end)`` lies entirely inside one interval."""
        if start >= end:
            return start == end
        idx = bisect.bisect_right(self._starts, start) - 1
        return idx >= 0 and self._ends[idx] >= end

    def overlaps(self, start: int, end: int) -> bool:
        """True if ``[start, end)`` intersects any interval."""
        if start >= end:
            return False
        idx = bisect.bisect_right(self._starts, start) - 1
        if idx >= 0 and self._ends[idx] > start:
            return True
        idx += 1
        return idx < len(self._starts) and self._starts[idx] < end

    def intersection(self, start: int, end: int) -> "IntervalSet":
        """The part of the set inside ``[start, end)``."""
        result = IntervalSet()
        if start >= end:
            return result
        idx = max(0, bisect.bisect_right(self._ends, start))
        while idx < len(self._starts) and self._starts[idx] < end:
            s = max(start, self._starts[idx])
            e = min(end, self._ends[idx])
            if s < e:
                result.add(s, e)
            idx += 1
        return result

    def total(self) -> int:
        """Total covered length."""
        return sum(e - s for s, e in self)

    def __iter__(self) -> _t.Iterator[_t.Tuple[int, int]]:
        return iter(zip(self._starts, self._ends))

    def __len__(self) -> int:
        return len(self._starts)

    def __bool__(self) -> bool:
        return bool(self._starts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._starts == other._starts and self._ends == other._ends

    def __repr__(self) -> str:
        spans = ", ".join(f"[{s}, {e})" for s, e in self)
        return f"IntervalSet({spans})"
