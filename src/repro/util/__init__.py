"""Shared small utilities (interval arithmetic, formatting helpers)."""

from repro.util.intervals import IntervalSet
from repro.util.units import fmt_bytes, fmt_rate, fmt_time

__all__ = ["IntervalSet", "fmt_bytes", "fmt_rate", "fmt_time"]
