"""The Redbud client node.

Wires together the paper's client-side stack (Fig. 2): page cache,
direct FC data path to the shared array, Ethernet RPC path to the MDS,
and -- per configuration -- the Delayed Commit machinery of §III/§IV.

Write path (an *update* in the paper's vocabulary):

1. acquire backing space -- locally from the delegated double pool for
   small files, or via a ``layout-get`` RPC otherwise;
2. buffer the data in the page cache and issue ``writepage`` to the
   block device (asynchronously -- the completion event is kept);
3. finish per the commit protocol: synchronous commit waits for the data
   and the commit RPC inline; delayed commit enqueues a commit record
   and returns at memory speed.
"""

from __future__ import annotations

import typing as _t

from repro.core.commit_queue import CommitQueue
from repro.core.compound import CompoundController, CompoundPolicy
from repro.core.daemon import CommitDaemonContext
from repro.core.delegation import DoubleSpacePool
from repro.core.protocol import (
    CommitProtocol,
    DelayedCommitProtocol,
    SynchronousCommitProtocol,
    make_protocol,
)
from repro.core.records import CommitRecord
from repro.core.thread_pool import AdaptiveCommitThreadPool, ThreadPoolPolicy
from repro.client.filesystem import FileSystemAPI
from repro.mds.extent import Extent
from repro.net.messages import (
    CreatePayload,
    DelegationPayload,
    GetattrPayload,
    LayoutGetPayload,
    UnlinkPayload,
)
from repro.net.rpc import RpcClient
from repro.core.kernel.events import Event
from repro.storage.blockdev import BlockDevice
from repro.storage.cache import PageCache

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.core.effects import Effects


def _segments(
    length: int, segment: _t.Optional[int]
) -> _t.Iterator[_t.Tuple[int, int]]:
    """Yield (offset, length) pieces of a write; one piece if unsplit."""
    if segment is None or length <= segment:
        yield 0, length
        return
    cursor = 0
    while cursor < length:
        piece = min(segment, length - cursor)
        yield cursor, piece
        cursor += piece


class RedbudClient(FileSystemAPI):
    """One client node of the Redbud cluster."""

    def __init__(
        self,
        env: "Effects",
        client_id: int,
        rpc: RpcClient,
        blockdev: BlockDevice,
        cache: _t.Optional[PageCache] = None,
        commit_mode: str = "synchronous",
        delegation: _t.Optional[DoubleSpacePool] = None,
        commit_queue_capacity: int = 4096,
        thread_pool_policy: ThreadPoolPolicy = ThreadPoolPolicy(),
        compound_policy: CompoundPolicy = CompoundPolicy(),
        fixed_compound_degree: _t.Optional[int] = None,
        device_id: int = 0,
        dirty_limit: int = 64 * 1024 * 1024,
        obs: _t.Optional[_t.Any] = None,
        degrade_after_timeouts: int = 3,
        degrade_backlog: _t.Optional[int] = None,
        delegation_pools: _t.Optional[
            _t.Dict[int, DoubleSpacePool]
        ] = None,
        shard_of_file: _t.Optional[_t.Callable[[int], int]] = None,
        num_shards: int = 1,
        witnesses: _t.Optional[_t.Any] = None,
    ) -> None:
        self.env = env
        self.client_id = client_id
        self.rpc = rpc
        self.blockdev = blockdev
        self.cache = cache if cache is not None else PageCache()
        self.commit_mode = commit_mode
        #: Delegated space is per metadata shard: each shard hands out
        #: chunks from its own allocation groups, so the client pools
        #: them separately.  ``delegation`` (the single-MDS surface)
        #: stays the shard-0 pool.
        self.num_shards = num_shards
        self._shard_of_file = shard_of_file
        if delegation_pools is not None:
            self._pools = dict(delegation_pools)
        elif delegation is not None:
            self._pools = {0: delegation}
        else:
            self._pools = {}
        self.delegation = self._pools.get(0)
        self.device_id = device_id
        #: Observability bundle (``repro.obs.Instrumentation``) or None.
        self.obs = obs
        self._node = f"client-{client_id}"

        self.commit_queue: _t.Optional[CommitQueue] = None
        self.thread_pool: _t.Optional[AdaptiveCommitThreadPool] = None
        self.compound: _t.Optional[CompoundController] = None
        self.daemon_ctx: _t.Optional[CommitDaemonContext] = None

        needs_queue = commit_mode in ("delayed", "unordered")
        if needs_queue:
            self.commit_queue = CommitQueue(
                env,
                capacity=commit_queue_capacity,
                obs=obs,
                node=self._node,
                shard_of=(shard_of_file if num_shards > 1 else None),
            )
            self.compound = CompoundController(
                env,
                uplink=rpc.transport.uplink,
                policy=compound_policy,
                fixed_degree=fixed_compound_degree,
                obs=obs,
                node=self._node,
            )
            self.daemon_ctx = CommitDaemonContext(
                env,
                self.commit_queue,
                rpc,
                self.compound,
                on_committed=self._on_record_committed,
                obs=obs,
                node=self._node,
                witnesses=witnesses,
            )
            self.thread_pool = AdaptiveCommitThreadPool(
                env, self.daemon_ctx, policy=thread_pool_policy
            )

        self.protocol: CommitProtocol = make_protocol(
            commit_mode, env, rpc, self.commit_queue, obs=obs, node=self._node
        )

        # Graceful degradation (§"Failure model" in DESIGN.md): when the
        # MDS looks unreachable (consecutive RPC timeouts) or the commit
        # backlog piles up past a threshold, delayed-commit clients fall
        # back to synchronous ordered writes -- each update then waits
        # for data stability and its own commit inline, bounding the
        # volatile commit backlog until the MDS answers again.  Only
        # armed when the RPC stub has a retry policy; without one, a
        # fault-free run never sees timeouts and must stay byte-identical
        # to pre-fault behaviour.
        self._sync_fallback: _t.Optional[SynchronousCommitProtocol] = None
        if needs_queue and rpc.retry is not None:
            self._sync_fallback = SynchronousCommitProtocol(
                env, rpc, obs=obs, node=self._node
            )
        self.degrade_after_timeouts = degrade_after_timeouts
        self.degrade_backlog = (
            degrade_backlog
            if degrade_backlog is not None
            else max(16, commit_queue_capacity // 8)
        )
        self.degraded = False
        self.degrade_transitions = 0
        self.degraded_writes = 0
        #: Kill-switch for the degraded->delayed reversion (the exit arm
        #: of the hysteresis).  Disabling it plants a liveness bug -- the
        #: client stays in sync fallback after the fault heals -- used by
        #: the soak harness's seeded-bug self-test (--seed-bug degrade).
        self.degrade_exit_enabled = True

        #: All not-yet-committed records per file (fsync waits on these).
        self._pending_records: _t.Dict[int, _t.Set[CommitRecord]] = {}
        #: In-flight delegation RPC per shard (at most one each).
        self._refill_events: _t.Dict[int, Event] = {}
        #: Writeback throttling (the kernel's dirty-pages limit): when the
        #: page cache holds this many un-persisted bytes, new writes block
        #: until the disk drains some -- this is what keeps delayed commit
        #: honest on large-file workloads (no infinite memory buffering).
        self.dirty_limit = dirty_limit
        self._dirty_waiters: _t.List[Event] = []
        self.dirty_throttle_events = 0
        #: Async writeback submission granularity (a writepage batch).
        self.writeback_segment = 16 * 1024
        #: Large streaming writes go out in full-size block-layer
        #: requests instead (no point splitting what cannot merge more).
        self.writeback_large_segment = 128 * 1024
        self.crashed = False

        # -- statistics --
        self.writes = 0
        self.reads = 0
        self.bytes_written = 0
        self.bytes_read = 0
        self.read_disk_hits = 0
        self.short_reads = 0
        #: Space-acquisition split: delegated-pool hits vs. layout RPCs
        #: (the §IV.A delegation hit-rate; always counted, tracing or not).
        self.space_local_allocs = 0
        self.space_rpc_allocs = 0

    # ------------------------------------------------------------------
    # FileSystemAPI
    # ------------------------------------------------------------------

    def _halt_forever(self) -> Event:
        """A dead node never completes anything: park the caller."""
        return Event(self.env)

    def create(self, name: str) -> _t.Generator:
        if self.crashed:
            yield self._halt_forever()
        meta = yield self.rpc.call("create", CreatePayload(name=name))
        return meta.file_id

    def write(
        self,
        file_id: int,
        offset: int,
        length: int,
        scattered: bool = False,
    ) -> _t.Generator:
        if length <= 0:
            raise ValueError(f"write length must be positive, got {length}")
        if self.crashed:
            yield self._halt_forever()
        self.writes += 1
        self.bytes_written += length

        # Causal trace: one update id and one root span per write call.
        update_id: _t.Optional[int] = None
        update_span = None
        if self.obs is not None:
            tracer = self.obs.tracer
            update_id = tracer.new_update()
            update_span = tracer.begin(
                "update",
                "client",
                node=self._node,
                actor="app",
                update_ids=(update_id,),
                file_id=file_id,
                offset=offset,
                length=length,
            )
            self.obs.registry.counter("client.updates").inc()

        # Dirty-pages throttle: block while the cache holds too much
        # un-persisted data (writeback backpressure, as in the kernel).
        while self.cache.dirty_bytes + length > self.dirty_limit and (
            self.cache.dirty_bytes > 0
        ):
            self.dirty_throttle_events += 1
            # Memory pressure kicks writeback: plugged writes go out now.
            self.blockdev.scheduler.expedite_all_writes()
            waiter = Event(self.env)
            self._dirty_waiters.append(waiter)
            yield waiter

        extents = yield from self._acquire_space(
            file_id, offset, length, scattered
        )

        # Page cache + writepage: issue the data I/O now (§III.A step 1).
        # Synchronous commit blocks the application, so each extent goes
        # out as one sync request.  Delayed commit's data is async
        # writeback: it is submitted in page-batch segments (the
        # writepage granularity) which the block layer re-merges --
        # within a file always, and across files when allocation made
        # them adjacent (space delegation).
        self.cache.write(file_id, offset, length)
        sync_write = self.commit_mode == "synchronous"
        data_events: _t.List[Event] = []
        for extent in extents:
            if sync_write:
                segment = None
            elif extent.length > 8 * self.writeback_segment:
                segment = self.writeback_large_segment
            else:
                segment = self.writeback_segment
            for seg_off, seg_len in _segments(extent.length, segment):
                event = self.blockdev.submit_write(
                    extent.volume_offset + seg_off,
                    seg_len,
                    file_id,
                    sync=sync_write,
                    trace_update=update_id,
                )
                event.callbacks.append(
                    lambda _ev, e=extent, so=seg_off, sl=seg_len: (
                        self._data_write_done(
                            file_id, e.file_offset + so, sl
                        )
                    )
                )
                if self.obs is not None:
                    # Open a writepage span closed by the completion
                    # callback (recording only -- cannot perturb order).
                    tracer = self.obs.tracer
                    wp_span = tracer.begin(
                        "writepage",
                        "client",
                        node=self._node,
                        actor="writeback",
                        parent=update_span.span_id,
                        update_ids=(update_id,),
                        start=extent.volume_offset + seg_off,
                        length=seg_len,
                        sync=sync_write,
                    )
                    event.callbacks.append(
                        lambda _ev, s=wp_span: tracer.end(s)
                    )
                data_events.append(event)

        protocol: CommitProtocol = self.protocol
        if self._update_degraded():
            protocol = self._sync_fallback
            self.degraded_writes += 1
        record = yield from protocol.finish_update(
            file_id, extents, data_events, update_id=update_id
        )
        if record is not None:
            self._pending_records.setdefault(file_id, set()).add(record)
        if update_span is not None:
            self.obs.tracer.end(update_span)

    def read(self, file_id: int, offset: int, length: int) -> _t.Generator:
        if length <= 0:
            raise ValueError(f"read length must be positive, got {length}")
        if self.crashed:
            yield self._halt_forever()
        self.reads += 1
        self.bytes_read += length

        if self.cache.read_hit(file_id, offset, length):
            return True
        reply = yield self.rpc.call(
            "layout_get",
            LayoutGetPayload(file_id=file_id, offset=offset, length=length),
        )
        if not reply.extents:
            # Nothing committed in the range (hole or uncommitted data
            # written elsewhere): reads as zeros without touching disk.
            self.short_reads += 1
            return False
        events = [
            self.blockdev.submit_read(e.volume_offset, e.length, file_id)
            for e in reply.extents
        ]
        for event in events:
            yield event
        self.read_disk_hits += 1
        for extent in reply.extents:
            self.cache.fill(file_id, extent.file_offset, extent.length)
        return True

    def fsync(self, file_id: int) -> _t.Generator:
        """Wait until every pending update of the file is durable."""
        # fsync kicks writeback: plugged async writes of this file are
        # dispatched immediately.
        self.blockdev.expedite_file(file_id)
        records = list(self._pending_records.get(file_id, ()))
        for record in records:
            # Data stability first (matters only in the unordered control
            # mode; delayed commit implies it before the RPC is sent).
            for event in record.data_events:
                if event.callbacks is not None:
                    yield event
            if not record.committed_event.processed:
                yield record.committed_event
        return None

    def close(self, file_id: int, sync: bool = False) -> _t.Generator:
        if sync:
            yield from self.fsync(file_id)
        return None

    def unlink(self, file_id: int) -> _t.Generator:
        yield from self.fsync(file_id)  # no dangling commits for dead files
        yield self.rpc.call("unlink", UnlinkPayload(file_id=file_id))
        self.cache.drop_file(file_id)
        return None

    def stat(self, file_id: int) -> _t.Generator:
        if self.crashed:
            yield self._halt_forever()
        meta = yield self.rpc.call(
            "getattr", GetattrPayload(file_id=file_id)
        )
        return meta

    # ------------------------------------------------------------------
    # Space acquisition
    # ------------------------------------------------------------------

    def _shard_for(self, file_id: int) -> int:
        if self._shard_of_file is None or self.num_shards == 1:
            return 0
        return self._shard_of_file(file_id)

    def _acquire_space(
        self, file_id: int, offset: int, length: int, scattered: bool = False
    ) -> _t.Generator:
        """Return the new extents backing ``[offset, offset+length)``."""
        shard = self._shard_for(file_id)
        pool = self._pools.get(shard)
        if not scattered and pool is not None and pool.can_serve(length):
            self.space_local_allocs += 1
            volume_offset = yield from self._delegated_alloc(shard, length)
            extent = Extent(
                file_offset=offset,
                length=length,
                device_id=self.device_id,
                volume_offset=volume_offset,
            )
            self._maybe_background_refill(shard)
            return [extent]

        self.space_rpc_allocs += 1
        reply = yield self.rpc.call(
            "layout_get",
            LayoutGetPayload(
                file_id=file_id,
                offset=offset,
                length=length,
                allocate=True,
                scattered=scattered,
                delegation_hint=(
                    pool is not None
                    and pool.needs_refill
                    and shard not in self._refill_events
                ),
            ),
        )
        if reply.chunk is not None and pool is not None:
            pool.refill(reply.chunk)
        return [e for e in reply.extents if e.state == "new"] or reply.extents

    def _delegated_alloc(self, shard: int, length: int) -> _t.Generator:
        """Allocate locally, fetching a fresh chunk if the pool ran dry."""
        pool = self._pools[shard]
        while True:
            volume_offset = pool.alloc(length)
            if volume_offset is not None:
                return volume_offset
            yield self._start_refill(shard)

    def _start_refill(self, shard: int = 0) -> Event:
        """Kick off (or join) an in-flight delegation RPC for a shard."""
        pending = self._refill_events.get(shard)
        if pending is not None:
            return pending
        done = Event(self.env)
        self._refill_events[shard] = done
        pool = self._pools[shard]

        def refill_proc() -> _t.Generator:
            chunk = yield self.rpc.call(
                "delegate",
                DelegationPayload(
                    chunk_size=pool.chunk_size, shard=shard
                ),
            )
            pool.refill(chunk)
            del self._refill_events[shard]
            done.succeed()

        self.env.process(refill_proc(), name=f"refill-{self.client_id}")
        return done

    def _maybe_background_refill(self, shard: int = 0) -> None:
        """Proactively refresh the standby chunk without blocking."""
        pool = self._pools.get(shard)
        if (
            pool is not None
            and pool.needs_refill
            and shard not in self._refill_events
        ):
            self._start_refill(shard)

    # ------------------------------------------------------------------
    # Commit bookkeeping
    # ------------------------------------------------------------------

    def _data_write_done(
        self, file_id: int, offset: int, length: int
    ) -> None:
        self.cache.mark_clean(file_id, offset, length)
        if self._dirty_waiters and (
            self.cache.dirty_bytes < self.dirty_limit
        ):
            waiters, self._dirty_waiters = self._dirty_waiters, []
            for waiter in waiters:
                if not waiter.triggered:
                    waiter.succeed()

    def _update_degraded(self) -> bool:
        """Evaluate (with hysteresis) the delayed->sync fallback state."""
        if self._sync_fallback is None:
            return False
        backlog = (
            len(self.commit_queue) if self.commit_queue is not None else 0
        )
        if not self.degraded:
            if (
                self.rpc.consecutive_timeouts >= self.degrade_after_timeouts
                or backlog >= self.degrade_backlog
            ):
                self.degraded = True
                self.degrade_transitions += 1
                if self.obs is not None:
                    self.obs.tracer.instant(
                        "degrade_enter", "fault",
                        node=self._node, actor="app",
                        timeouts=self.rpc.consecutive_timeouts,
                        backlog=backlog,
                    )
                    self.obs.registry.counter("client.degrade_enter").inc()
        else:
            # Leave only once the MDS answers again *and* the backlog has
            # drained well below the entry threshold (hysteresis).
            if (
                self.degrade_exit_enabled
                and self.rpc.consecutive_timeouts == 0
                and backlog <= self.degrade_backlog // 2
            ):
                self.degraded = False
                self.degrade_transitions += 1
                if self.obs is not None:
                    self.obs.tracer.instant(
                        "degrade_exit", "fault",
                        node=self._node, actor="app",
                        backlog=backlog,
                    )
                    self.obs.registry.counter("client.degrade_exit").inc()
        return self.degraded

    def _on_record_committed(self, record: CommitRecord) -> None:
        pending = self._pending_records.get(record.file_id)
        if pending is not None:
            pending.discard(record)
            if not pending:
                del self._pending_records[record.file_id]

    def pending_commit_count(self) -> int:
        return sum(len(s) for s in self._pending_records.values())

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def shutdown(self) -> _t.Generator:
        """Graceful stop: flush commits, return unused delegated space."""
        for file_id in list(self._pending_records):
            yield from self.fsync(file_id)
        for shard in sorted(self._pools):
            leftovers = self._pools[shard].drain()
            if leftovers:
                from repro.net.messages import ReleasePayload

                yield self.rpc.call(
                    "release",
                    ReleasePayload(chunks=leftovers, shard=shard),
                )
        if self.thread_pool is not None:
            self.thread_pool.stop()
        return None

    def crash(self) -> None:
        """Power loss: all volatile state disappears instantly."""
        self.crashed = True
        self.cache.drop_volatile()
        if self.commit_queue is not None:
            self.commit_queue.drop_all()
        if self.thread_pool is not None:
            self.thread_pool.stop()
        self._pending_records.clear()

    def die(self) -> int:
        """Single-node death while the rest of the cluster keeps running.

        Unlike :meth:`crash` (a whole-cluster power-loss snapshot taken
        just before the simulation stops), ``die`` models one client
        failing mid-run: its volatile state is lost, its queued block
        requests vanish with it, and its RPC stub goes silent forever --
        so in-flight retry loops park instead of retransmitting.  The
        node's uncommitted and delegated space is *not* returned here;
        that is exactly what the MDS's lease GC reclaims once the dead
        client's lease expires.  Returns the number of queued block
        requests lost with the node.
        """
        if self.crashed:
            return 0
        self.crash()
        self.rpc.stop()
        lost_io = self.blockdev.scheduler.drop_all()
        if self.obs is not None:
            self.obs.tracer.instant(
                "client_death", "fault",
                node=self._node, actor="app",
                lost_block_requests=lost_io,
            )
            self.obs.registry.counter("faults.client_deaths").inc()
        return lost_io
