"""The Redbud client.

A client node owns a page cache, a block device queue into the shared
array (its FC data path), an RPC connection to the MDS (its Ethernet
metadata path), and -- depending on configuration -- the delayed-commit
machinery (commit queue, adaptive daemon pool, compound controller) and
a space-delegation double pool.

:class:`RedbudClient` exposes the POSIX-ish generator API that the
workload generators drive: ``create`` / ``write`` / ``read`` / ``fsync``
/ ``close`` / ``unlink`` / ``stat``.
"""

from repro.client.client import RedbudClient
from repro.client.filesystem import FileSystemAPI

__all__ = ["FileSystemAPI", "RedbudClient"]
