"""The file-system API contract shared by Redbud and the baselines.

Workload generators (:mod:`repro.workloads`) are written against this
interface only, so the same personality runs unchanged on Redbud in any
commit mode, on the NFS3 baseline, and on the PVFS2 baseline -- which is
what makes the Fig. 3 comparison meaningful.

All methods are *generators* to be driven inside a simulation process::

    file_id = yield from fs.create("mail/0001")
    yield from fs.write(file_id, 0, 4096)
    yield from fs.fsync(file_id)
"""

from __future__ import annotations

import typing as _t


class FileSystemAPI:
    """Abstract file-system operations offered to applications."""

    #: Whether the system's MPI-IO driver performs collective buffering
    #: (aggregating strided parallel I/O into large contiguous requests).
    #: PVFS2's ROMIO driver does; the POSIX-path systems do not -- the
    #: asymmetry behind the paper's NPB result.
    supports_collective_io = False

    def create(self, name: str) -> _t.Generator:
        """Create a file; returns its file id."""
        raise NotImplementedError

    def write(
        self,
        file_id: int,
        offset: int,
        length: int,
        scattered: bool = False,
    ) -> _t.Generator:
        """Write ``length`` bytes at ``offset`` (an *update* operation).

        ``scattered`` asks the system to place the data at an arbitrary
        (aged-namespace) position instead of the allocation frontier;
        workload *setup* uses it so seeded corpora physically spread over
        the volume the way years-old real namespaces do.
        """
        raise NotImplementedError

    def read(self, file_id: int, offset: int, length: int) -> _t.Generator:
        """Read ``length`` bytes at ``offset``."""
        raise NotImplementedError

    def fsync(self, file_id: int) -> _t.Generator:
        """Block until the file's data and metadata are durable."""
        raise NotImplementedError

    def close(self, file_id: int, sync: bool = False) -> _t.Generator:
        """Close the file; with ``sync`` behaves like fsync-then-close."""
        raise NotImplementedError

    def unlink(self, file_id: int) -> _t.Generator:
        """Delete the file."""
        raise NotImplementedError

    def stat(self, file_id: int) -> _t.Generator:
        """Fetch the file's metadata."""
        raise NotImplementedError
