"""Compatibility shim: :class:`StreamRNG` now lives in ``repro.util``.

The protocol layer (RPC retry jitter, the rt smoke workload) needs
seeded streams on either substrate, so the implementation moved to
:mod:`repro.util.rng`; this module re-exports it for existing imports.
"""

from repro.util.rng import StreamRNG, _hash_token  # noqa: F401

__all__ = ["StreamRNG"]
