"""Compatibility shim: resource primitives now live in the kernel.

See :mod:`repro.core.kernel.resources`; re-exported here so existing
imports and class-identity checks keep working unchanged.
"""

from repro.core.kernel.resources import (  # noqa: F401
    Container,
    ContainerGet,
    ContainerPut,
    FilterStore,
    FilterStoreGet,
    PriorityItem,
    PriorityStore,
    Request,
    Resource,
    Store,
    StoreGet,
    StorePut,
)

__all__ = [
    "Container",
    "ContainerGet",
    "ContainerPut",
    "FilterStore",
    "FilterStoreGet",
    "PriorityItem",
    "PriorityStore",
    "Request",
    "Resource",
    "Store",
    "StoreGet",
    "StorePut",
]
