"""Discrete-event simulation kernel.

This package is the foundation substrate for the whole reproduction: every
node, daemon thread, disk head and network link in the simulated cluster is
a process running against the virtual clock provided here.

The design follows the classic event-calendar architecture (and borrows its
user-facing idioms from SimPy): an :class:`~repro.sim.engine.Environment`
owns a heap of scheduled events, and *processes* are Python generators that
``yield`` events to suspend until those events fire.

Public API
----------
- :class:`Environment` -- the virtual clock and event calendar.
- :class:`Event`, :class:`Timeout`, :class:`AllOf`, :class:`AnyOf` -- events.
- :class:`Process`, :class:`Interrupt` -- generator-backed processes.
- :class:`Resource`, :class:`Store`, :class:`PriorityStore`,
  :class:`FilterStore`, :class:`Container` -- shared-resource primitives.
- :class:`StreamRNG` -- reproducible, stream-split random numbers.

Example
-------
>>> from repro.sim import Environment
>>> env = Environment()
>>> log = []
>>> def proc(env):
...     yield env.timeout(1.5)
...     log.append(env.now)
>>> _ = env.process(proc(env))
>>> env.run()
>>> log
[1.5]
"""

from repro.sim.effects import SimEffects
from repro.sim.engine import Environment, SimulationError
from repro.sim.events import (
    AllOf,
    AnyOf,
    Condition,
    ConditionValue,
    Event,
    Timeout,
)
from repro.sim.process import Interrupt, Process
from repro.sim.resources import (
    Container,
    FilterStore,
    PriorityItem,
    PriorityStore,
    Resource,
    Store,
)
from repro.sim.rng import StreamRNG

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "ConditionValue",
    "Container",
    "Environment",
    "Event",
    "FilterStore",
    "Interrupt",
    "PriorityItem",
    "PriorityStore",
    "Process",
    "Resource",
    "SimEffects",
    "SimulationError",
    "Store",
    "StreamRNG",
    "Timeout",
]
