"""The virtual clock and event calendar.

:class:`Environment` owns a scheduler of ``(time, priority, sequence,
event)`` entries.  :meth:`Environment.step` pops the earliest entry,
advances ``now`` and runs the event's callbacks; :meth:`Environment.run`
steps until the calendar empties, a deadline passes, or a given event
fires.

Two interchangeable scheduler implementations back the calendar:

- :class:`CalendarQueue` (the default) -- a bucketed calendar queue in
  the style of Brown (CACM 1988): events hash into ``floor(t / width)``
  buckets over a power-of-two ring, the current bucket serves pops in
  O(1) amortized, and far-future events (lease expiries, retry backoff)
  park in a binary-heap overflow lane until the bucket horizon reaches
  them.  Bucket count and width resize themselves from the observed
  event population (see ``_rebuild``).
- :class:`HeapScheduler` -- the classic global binary heap, kept both as
  the reference implementation the property tests compare against and
  as a selectable fallback (``Environment(scheduler="heap")``).

Both produce the *exact same pop order*; the calendar is purely a
constant-factor/asymptotic win, never a semantic change.

Determinism
-----------
Entries are totally ordered: ties on time break on priority (urgent events
such as process initialisation fire first), then on a monotonically
increasing sequence number.  Two runs of the same model with the same RNG
seeds therefore produce identical traces -- a property the reproduction's
tests rely on heavily.

Cancelled timeouts
------------------
:meth:`~repro.sim.events.Timeout.cancel` tombstones an entry in place
(its callback list becomes ``None``); the pop loops skip tombstones, and
the environment compacts the scheduler when cancelled entries outnumber
live ones, so retry/backoff churn cannot bloat the calendar.
"""

from __future__ import annotations

import heapq
import math
import typing as _t
from sys import getrefcount as _getrefcount

from repro.core.effects import Effects
from repro.core.kernel.events import (
    PRIORITY_NORMAL,
    AllOf,
    AnyOf,
    Event,
    Timeout,
)
from repro.core.kernel.process import Process

# Bound once at import: the calendar operations run once per simulated
# event, so even the ``heapq.`` attribute lookup is measurable.
_heappush = heapq.heappush
_heappop = heapq.heappop
_heapify = heapq.heapify
_floor = math.floor
_INF = float("inf")

#: Recycled Timeout objects kept per environment (see ``Environment.timeout``).
_TIMEOUT_POOL_MAX = 1024

#: Entry tuple: (time, priority, seq, event, push_time).  The trailing
#: push-time element never participates in ordering (the sequence number
#: is unique); it feeds the event-loop-lag probe when one is installed.
Entry = _t.Tuple[float, int, int, Event, float]


class SimulationError(Exception):
    """An unhandled failure escaped from the simulation."""


class _StopRun(Exception):
    """Internal: raised by the until-event callback to end ``run``."""

    def __init__(self, event: Event) -> None:
        self.event = event


class HeapScheduler:
    """The classic single binary heap over all pending entries.

    Kept as the reference ordering (property tests diff the calendar
    queue against it) and as an explicit fallback via
    ``Environment(scheduler="heap")``.
    """

    __slots__ = ("_heap",)

    def __init__(self, start: float = 0.0) -> None:
        self._heap: _t.List[Entry] = []

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, entry: Entry) -> None:
        _heappush(self._heap, entry)

    def pop(self) -> _t.Optional[Entry]:
        """Earliest entry, or ``None`` when empty (never raises)."""
        heap = self._heap
        return _heappop(heap) if heap else None

    def peek_time(self) -> float:
        heap = self._heap
        return heap[0][0] if heap else _INF

    def purge_cancelled(self) -> int:
        """Drop tombstoned entries (cancelled events); return the count."""
        heap = self._heap
        keep = [e for e in heap if e[3].callbacks is not None]
        removed = len(heap) - len(keep)
        if removed:
            _heapify(keep)
            self._heap = keep
        return removed


class CalendarQueue:
    """Bucketed calendar queue with a far-future overflow heap.

    Entries hash into ``floor(t / width) & (nbuckets - 1)`` buckets (each
    bucket a tiny heap, so intra-bucket priority/sequence ties stay
    exact).  A pop serves the current bucket if its head falls inside the
    bucket's current "year" window; otherwise the scan rotates forward
    one bucket-width at a time.  Entries beyond the ring's horizon
    (``nbuckets * width`` ahead) park in a binary-heap overflow lane and
    migrate into buckets as the horizon advances -- the migration is what
    keeps the **invariant that every overflow entry sorts after every
    bucketed entry**, which in turn is what makes the current-bucket fast
    path safe.

    Resizing: the bucket ring doubles when the population exceeds two
    entries per bucket and halves when it drops below one per two
    buckets; each rebuild re-tunes the bucket width to three times the
    median inter-event gap, snapped to a power of two so boundary
    arithmetic stays exact (no bucket-edge float drift).
    """

    MIN_BUCKETS = 16
    MAX_BUCKETS = 1 << 17

    __slots__ = (
        "_buckets",
        "_nbuckets",
        "_mask",
        "_width",
        "_cur",
        "_bucket_top",
        "_horizon",
        "_overflow",
        "_size",
        "_last",
    )

    def __init__(self, start: float = 0.0, width: float = 2.0 ** -14) -> None:
        self._overflow: _t.List[Entry] = []
        self._size = 0
        self._last = start
        self._layout(self.MIN_BUCKETS, width, start)

    def __len__(self) -> int:
        return self._size

    # -- geometry ----------------------------------------------------------

    def _layout(self, nbuckets: int, width: float, start: float) -> None:
        """(Re)build an empty ring anchored so ``start`` is in-window."""
        self._nbuckets = nbuckets
        self._mask = nbuckets - 1
        self._width = width
        self._buckets: _t.List[_t.List[Entry]] = [
            [] for _ in range(nbuckets)
        ]
        k = _floor(start / width)
        self._cur = k & self._mask
        self._bucket_top = (k + 1.0) * width
        self._horizon = self._bucket_top + (nbuckets - 1) * width

    def _rebuild(self, nbuckets: int) -> None:
        entries = [e for bucket in self._buckets for e in bucket]
        entries.extend(self._overflow)
        self._overflow = []
        width = self._tuned_width(entries) or self._width
        self._layout(nbuckets, width, self._last)
        horizon = self._horizon
        mask = self._mask
        buckets = self._buckets
        overflow = self._overflow
        for entry in entries:
            t = entry[0]
            if t < horizon:
                _heappush(buckets[_floor(t / width) & mask], entry)
            else:
                _heappush(overflow, entry)

    def _tuned_width(self, entries: _t.List[Entry]) -> _t.Optional[float]:
        """Three times the median inter-event gap, snapped to 2**k."""
        if len(entries) < 2:
            return None
        times = sorted(e[0] for e in entries if e[0] != _INF)
        gaps = sorted(
            b - a for a, b in zip(times, times[1:]) if b > a
        )
        if not gaps:
            return None
        target = 3.0 * gaps[len(gaps) // 2]
        return 2.0 ** max(-60, min(20, round(math.log2(target))))

    # -- scheduler surface -------------------------------------------------

    def push(self, entry: Entry) -> None:
        t = entry[0]
        if t < self._horizon:
            _heappush(
                self._buckets[_floor(t / self._width) & self._mask], entry
            )
        else:
            _heappush(self._overflow, entry)
        size = self._size + 1
        self._size = size
        if size > (self._nbuckets << 1) and self._nbuckets < self.MAX_BUCKETS:
            self._rebuild(self._nbuckets << 1)

    def pop(self) -> _t.Optional[Entry]:
        """Earliest entry, or ``None`` when empty (never raises)."""
        if self._size == 0:
            return None
        bucket = self._buckets[self._cur]
        if bucket and bucket[0][0] < self._bucket_top:
            self._size -= 1
            entry = _heappop(bucket)
            self._last = entry[0]
            return entry
        return self._pop_slow()

    def _pop_slow(self) -> Entry:
        """Rotate the ring forward; fall back to a direct min search."""
        if (
            self._size < (self._nbuckets >> 1)
            and self._nbuckets > self.MIN_BUCKETS
        ):
            # Sparse ring: shrinking re-anchors the window at the last
            # popped time, which usually makes the next pop O(1) again.
            # Retry from the top -- the re-anchored *current* bucket may
            # now hold the minimum, and the rotation below starts by
            # advancing past it.
            self._rebuild(self._nbuckets >> 1)
            return self.pop()
        buckets = self._buckets
        width = self._width
        mask = self._mask
        overflow = self._overflow
        i = self._cur
        top = self._bucket_top
        for _ in range(self._nbuckets):
            i = (i + 1) & mask
            top += width
            horizon = self._horizon + width
            self._horizon = horizon
            # Horizon advanced one bucket: anything in the overflow lane
            # that the window now covers must move into its bucket *now*
            # or a later bucketed entry could be served before it.
            while overflow and overflow[0][0] < horizon:
                moved = _heappop(overflow)
                _heappush(buckets[_floor(moved[0] / width) & mask], moved)
            bucket = buckets[i]
            if bucket and bucket[0][0] < top:
                self._cur = i
                self._bucket_top = top
                self._size -= 1
                entry = _heappop(bucket)
                self._last = entry[0]
                return entry
        return self._pop_direct()

    def _pop_direct(self) -> Entry:
        """No entry within a full rotation: jump to the global minimum.

        Equal times always land in the same bucket, so comparing bucket
        heads (full tuples, so priority/seq ties stay exact) against the
        overflow head finds the true minimum.
        """
        best: _t.Optional[Entry] = None
        for bucket in self._buckets:
            if bucket and (best is None or bucket[0] < best):
                best = bucket[0]
        overflow = self._overflow
        if overflow and (best is None or overflow[0] < best):
            best = overflow[0]
        assert best is not None  # _size > 0
        t = best[0]
        if t == _INF:
            # Degenerate (delay=inf): serve straight from the overflow
            # heap; floor(inf / width) has no bucket.
            self._size -= 1
            return _heappop(overflow)
        width = self._width
        mask = self._mask
        k = _floor(t / width)
        self._cur = k & mask
        self._bucket_top = (k + 1.0) * width
        horizon = self._bucket_top + mask * width
        if horizon > self._horizon:
            self._horizon = horizon
            buckets = self._buckets
            while overflow and overflow[0][0] < horizon:
                moved = _heappop(overflow)
                _heappush(buckets[_floor(moved[0] / width) & mask], moved)
        bucket = self._buckets[self._cur]
        self._size -= 1
        entry = _heappop(bucket)
        self._last = entry[0]
        return entry

    def peek_time(self) -> float:
        if self._size == 0:
            return _INF
        bucket = self._buckets[self._cur]
        if bucket and bucket[0][0] < self._bucket_top:
            return bucket[0][0]
        best = _INF
        for bucket in self._buckets:
            if bucket and bucket[0][0] < best:
                best = bucket[0][0]
        overflow = self._overflow
        if overflow and overflow[0][0] < best:
            best = overflow[0][0]
        return best

    def purge_cancelled(self) -> int:
        """Drop tombstoned entries (cancelled events); return the count."""
        removed = 0
        for bucket in self._buckets:
            if bucket:
                keep = [e for e in bucket if e[3].callbacks is not None]
                if len(keep) != len(bucket):
                    removed += len(bucket) - len(keep)
                    _heapify(keep)
                    bucket[:] = keep
        overflow = self._overflow
        keep = [e for e in overflow if e[3].callbacks is not None]
        if len(keep) != len(overflow):
            removed += len(overflow) - len(keep)
            _heapify(keep)
            overflow[:] = keep
        self._size -= removed
        return removed


#: Name -> implementation for ``Environment(scheduler=...)``.
SCHEDULERS: _t.Dict[str, _t.Type] = {
    "calendar": CalendarQueue,
    "heap": HeapScheduler,
}


class Environment(Effects):
    """Execution environment for a single simulation.

    The virtual-time substrate of the effects boundary: it implements
    the :class:`~repro.core.effects.Effects` contract (``now``,
    ``schedule``, tombstone bookkeeping) over a deterministic event
    calendar.  :class:`repro.sim.effects.SimEffects` is the named alias
    protocol assembly code uses.

    Parameters
    ----------
    initial_time:
        The virtual time at which the clock starts (seconds).
    scheduler:
        ``"calendar"`` (default, O(1) amortized) or ``"heap"`` (the
        reference binary heap).  Both dispatch in the identical
        ``(time, priority, seq)`` total order.
    """

    __slots__ = (
        "_now",
        "_queue",
        "_seq",
        "_active_process",
        "probe",
        "_push",
        "_pop",
        "_timeout_pool",
        "_cancelled",
        "scheduler",
    )

    def __init__(
        self, initial_time: float = 0.0, scheduler: str = "calendar"
    ) -> None:
        self._now = float(initial_time)
        try:
            queue_cls = SCHEDULERS[scheduler]
        except KeyError:
            raise ValueError(
                f"unknown scheduler {scheduler!r}; choose from "
                f"{sorted(SCHEDULERS)}"
            ) from None
        #: The scheduler name this environment runs on (read-only intent).
        self.scheduler = scheduler
        self._queue = queue_cls(start=self._now)
        # Bound methods: one attribute hop saved on the two operations
        # that run once per simulated event.
        self._push = self._queue.push
        self._pop = self._queue.pop
        self._seq = 0
        self._active_process: _t.Optional[Process] = None
        #: Recycled Timeout objects (see :meth:`timeout`): a popped
        #: Timeout nobody else references goes back here instead of to
        #: the allocator, so steady-state think/RPC-timer churn allocates
        #: near-zero event objects.
        self._timeout_pool: _t.List[Timeout] = []
        #: Cancelled-but-still-queued entries (tombstones).
        self._cancelled = 0
        #: Optional observability probe (see ``repro.obs``): when set,
        #: :meth:`step` reports each event's calendar sojourn time and
        #: the calendar depth.  Recording only -- the probe never alters
        #: scheduling, so traced and untraced runs are identical.
        self.probe: _t.Optional[_t.Any] = None

    # -- clock ------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def active_process(self) -> _t.Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    @property
    def scheduled_events(self) -> int:
        """Total events placed on the calendar since construction.

        Monotonic and cheap (it is the ordering sequence number), so the
        benchmark harness uses it as the events/sec numerator without
        perturbing the run.
        """
        return self._seq

    @property
    def pending_events(self) -> int:
        """Entries currently on the calendar (tombstones included)."""
        return len(self._queue)

    # -- event factories ---------------------------------------------------

    def event(self) -> Event:
        """Create a fresh pending event."""
        return Event(self)

    def timeout(self, delay: float, value: _t.Any = None) -> Timeout:
        """An event that fires ``delay`` seconds from now.

        Serves from the environment's free list when possible: a
        recycled Timeout is indistinguishable from a fresh one (same
        state transitions, same scheduling order) -- only the allocation
        is skipped.
        """
        pool = self._timeout_pool
        if pool:
            if delay < 0:
                raise ValueError(f"negative delay {delay}")
            timer = pool.pop()
            timer.callbacks = []
            timer._value = value
            timer._ok = True
            timer._defused = False
            timer.delay = delay
            self.schedule(timer, delay=delay)
            return timer
        return Timeout(self, delay, value)

    def process(
        self,
        generator: _t.Generator[Event, _t.Any, _t.Any],
        name: _t.Optional[str] = None,
    ) -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: _t.Iterable[Event]) -> AllOf:
        """An event that fires when every event in ``events`` has."""
        return AllOf(self, events)

    def any_of(self, events: _t.Iterable[Event]) -> AnyOf:
        """An event that fires when any event in ``events`` has."""
        return AnyOf(self, events)

    # -- scheduling ---------------------------------------------------------

    def schedule(
        self,
        event: Event,
        delay: float = 0.0,
        priority: int = PRIORITY_NORMAL,
    ) -> None:
        """Place a triggered event on the calendar ``delay`` from now."""
        seq = self._seq
        self._seq = seq + 1
        now = self._now
        self._push((now + delay, priority, seq, event, now))

    def peek(self) -> float:
        """Time of the next scheduled entry, or ``inf`` if none.

        Consistent across both scheduler implementations (the old heap
        path leaked ``IndexError`` from ``heapq`` internals on some call
        patterns).  A cancelled-but-unpopped timeout still counts -- its
        tombstone occupies the slot until swept.
        """
        return self._queue.peek_time()

    def _note_cancelled(self) -> None:
        """A queued entry was tombstoned (see ``Timeout.cancel``).

        When tombstones outnumber live entries the scheduler is
        compacted, so repeated cancel/reschedule churn (RPC retry timers,
        backoff) keeps the calendar bounded by the *live* event count.
        """
        cancelled = self._cancelled + 1
        queue = self._queue
        if cancelled >= 64 and (cancelled << 1) > len(queue):
            queue.purge_cancelled()
            self._cancelled = 0
        else:
            self._cancelled = cancelled

    def _recycle(self, event: Event) -> None:
        """Return a dead Timeout to the free list if nothing else can see it.

        ``getrefcount == 3`` means the only references are the event
        loop's local, this frame's parameter and getrefcount's own
        argument -- no process, condition or user code holds the object,
        so reuse is invisible.  Exact-type check: subclasses may carry
        extra state we must not resurrect.
        """
        if type(event) is Timeout and _getrefcount(event) == 3:
            pool = self._timeout_pool
            if len(pool) < _TIMEOUT_POOL_MAX:
                pool.append(event)

    def step(self) -> None:
        """Process the next scheduled event (skipping tombstones).

        Raises
        ------
        SimulationError
            If the calendar is empty, or the event failed and nobody
            defused the failure.
        """
        entry = self._pop()
        if entry is None:
            raise SimulationError(
                "cannot step: the event calendar is empty"
            )
        while True:
            when, _prio, _seq, event, pushed = entry
            del entry
            callbacks = event.callbacks
            if callbacks is not None:
                break
            # Tombstone: a timeout cancelled after scheduling.
            self._cancelled -= 1
            self._recycle(event)
            entry = self._pop()
            if entry is None:
                return  # only tombstones remained; nothing to process
        self._now = when
        if self.probe is not None:
            self.probe.on_step(when - pushed, len(self._queue) + 1)

        event.callbacks = None
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            cause = event._value
            raise SimulationError(
                f"unhandled failure in {event!r}: {cause!r}"
            ) from cause
        self._recycle(event)

    def run(self, until: _t.Union[None, float, Event] = None) -> _t.Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None`` -- run until the calendar is empty.
            A number -- run until virtual time reaches it (clock is left at
            exactly ``until``).
            An :class:`Event` -- run until it is processed; its value is
            returned (a failed event re-raises its exception).
        """
        stop_event: _t.Optional[Event] = None
        if until is not None:
            if isinstance(until, Event):
                stop_event = until
                if stop_event.callbacks is None:
                    # Already processed: return (or raise) immediately.
                    if stop_event._ok:
                        return stop_event._value
                    raise stop_event._value
                stop_event.callbacks.append(_stop_callback)
            else:
                deadline = float(until)
                if deadline < self._now:
                    raise ValueError(
                        f"until={deadline} is in the past (now={self._now})"
                    )
                stop_event = Event(self)
                stop_event._ok = True
                stop_event._value = None
                # Urgent priority: fire before normal events at `deadline`.
                self.schedule(stop_event, delay=deadline - self._now, priority=-1)
                stop_event.callbacks.append(_stop_callback)

        try:
            # The hot loop.  When no probe is installed :meth:`step` is
            # inlined here with the probe branch hoisted out entirely --
            # the pop order (and therefore every trace) is identical to
            # repeated ``step()`` calls; only the Python overhead per
            # event differs.  The scheduler object is never rebound, so
            # the local aliases stay valid across callbacks that schedule.
            pop = self._pop
            recycle = self._recycle
            if self.probe is None:
                while True:
                    entry = pop()
                    if entry is None:
                        break
                    event = entry[3]
                    callbacks = event.callbacks
                    if callbacks is None:
                        # Tombstone (cancelled timeout): skip.
                        self._cancelled -= 1
                        del entry
                        recycle(event)
                        continue
                    self._now = entry[0]
                    del entry
                    event.callbacks = None
                    for callback in callbacks:
                        callback(event)
                    if not event._ok and not event._defused:
                        cause = event._value
                        raise SimulationError(
                            f"unhandled failure in {event!r}: {cause!r}"
                        ) from cause
                    recycle(event)
            else:
                queue = self._queue
                while len(queue):
                    self.step()
        except _StopRun as stop:
            event = stop.event
            if event._ok:
                return event._value
            event._defused = True
            raise event._value
        finally:
            if stop_event is not None and stop_event.callbacks is not None:
                try:
                    stop_event.callbacks.remove(_stop_callback)
                except ValueError:  # pragma: no cover
                    pass

        if stop_event is not None and isinstance(until, Event):
            raise SimulationError(
                f"run(until={until!r}) ended before the event fired"
            )
        return None


def _stop_callback(event: Event) -> None:
    raise _StopRun(event)
