"""The virtual clock and event calendar.

:class:`Environment` owns a binary heap of ``(time, priority, sequence,
event)`` entries.  :meth:`Environment.step` pops the earliest entry,
advances ``now`` and runs the event's callbacks; :meth:`Environment.run`
steps until the calendar empties, a deadline passes, or a given event
fires.

Determinism
-----------
Entries are totally ordered: ties on time break on priority (urgent events
such as process initialisation fire first), then on a monotonically
increasing sequence number.  Two runs of the same model with the same RNG
seeds therefore produce identical traces -- a property the reproduction's
tests rely on heavily.
"""

from __future__ import annotations

import heapq
import typing as _t

from repro.sim.events import (
    PRIORITY_NORMAL,
    AllOf,
    AnyOf,
    Event,
    Timeout,
)
from repro.sim.process import Process

# Bound once at import: the calendar operations run once per simulated
# event, so even the ``heapq.`` attribute lookup is measurable.
_heappush = heapq.heappush
_heappop = heapq.heappop


class SimulationError(Exception):
    """An unhandled failure escaped from the simulation."""


class _StopRun(Exception):
    """Internal: raised by the until-event callback to end ``run``."""

    def __init__(self, event: Event) -> None:
        self.event = event


class Environment:
    """Execution environment for a single simulation.

    Parameters
    ----------
    initial_time:
        The virtual time at which the clock starts (seconds).
    """

    __slots__ = ("_now", "_queue", "_seq", "_active_process", "probe")

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: _t.List[
            _t.Tuple[float, int, int, Event, float]
        ] = []
        self._seq = 0
        self._active_process: _t.Optional[Process] = None
        #: Optional observability probe (see ``repro.obs``): when set,
        #: :meth:`step` reports each event's calendar sojourn time and
        #: the calendar depth.  Recording only -- the probe never alters
        #: scheduling, so traced and untraced runs are identical.
        self.probe: _t.Optional[_t.Any] = None

    # -- clock ------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def active_process(self) -> _t.Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    @property
    def scheduled_events(self) -> int:
        """Total events placed on the calendar since construction.

        Monotonic and cheap (it is the ordering sequence number), so the
        benchmark harness uses it as the events/sec numerator without
        perturbing the run.
        """
        return self._seq

    # -- event factories ---------------------------------------------------

    def event(self) -> Event:
        """Create a fresh pending event."""
        return Event(self)

    def timeout(self, delay: float, value: _t.Any = None) -> Timeout:
        """An event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(
        self,
        generator: _t.Generator[Event, _t.Any, _t.Any],
        name: _t.Optional[str] = None,
    ) -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: _t.Iterable[Event]) -> AllOf:
        """An event that fires when every event in ``events`` has."""
        return AllOf(self, events)

    def any_of(self, events: _t.Iterable[Event]) -> AnyOf:
        """An event that fires when any event in ``events`` has."""
        return AnyOf(self, events)

    # -- scheduling ---------------------------------------------------------

    def schedule(
        self,
        event: Event,
        delay: float = 0.0,
        priority: int = PRIORITY_NORMAL,
    ) -> None:
        """Place a triggered event on the calendar ``delay`` from now."""
        # The trailing push-time element never participates in ordering
        # (the sequence number is unique); it feeds the event-loop-lag
        # probe when one is installed.
        seq = self._seq
        self._seq = seq + 1
        now = self._now
        _heappush(self._queue, (now + delay, priority, seq, event, now))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the next scheduled event.

        Raises
        ------
        IndexError
            If the calendar is empty.
        SimulationError
            If the event failed and nobody defused the failure.
        """
        when, _prio, _seq, event, pushed = _heappop(self._queue)
        self._now = when
        if self.probe is not None:
            self.probe.on_step(when - pushed, len(self._queue) + 1)

        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            cause = event._value
            raise SimulationError(
                f"unhandled failure in {event!r}: {cause!r}"
            ) from cause

    def run(self, until: _t.Union[None, float, Event] = None) -> _t.Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None`` -- run until the calendar is empty.
            A number -- run until virtual time reaches it (clock is left at
            exactly ``until``).
            An :class:`Event` -- run until it is processed; its value is
            returned (a failed event re-raises its exception).
        """
        stop_event: _t.Optional[Event] = None
        if until is not None:
            if isinstance(until, Event):
                stop_event = until
                if stop_event.callbacks is None:
                    # Already processed: return (or raise) immediately.
                    if stop_event._ok:
                        return stop_event._value
                    raise stop_event._value
                stop_event.callbacks.append(_stop_callback)
            else:
                deadline = float(until)
                if deadline < self._now:
                    raise ValueError(
                        f"until={deadline} is in the past (now={self._now})"
                    )
                stop_event = Event(self)
                stop_event._ok = True
                stop_event._value = None
                # Urgent priority: fire before normal events at `deadline`.
                self.schedule(stop_event, delay=deadline - self._now, priority=-1)
                stop_event.callbacks.append(_stop_callback)

        try:
            # The hot loop.  When no probe is installed :meth:`step` is
            # inlined here with the probe branch hoisted out entirely --
            # the pop order (and therefore every trace) is identical to
            # repeated ``step()`` calls; only the Python overhead per
            # event differs.  ``self._queue`` is never rebound, so the
            # local alias stays valid across callbacks that schedule.
            queue = self._queue
            pop = _heappop
            if self.probe is None:
                while queue:
                    when, _prio, _seq, event, _pushed = pop(queue)
                    self._now = when
                    callbacks, event.callbacks = event.callbacks, None
                    for callback in callbacks:
                        callback(event)
                    if not event._ok and not event._defused:
                        cause = event._value
                        raise SimulationError(
                            f"unhandled failure in {event!r}: {cause!r}"
                        ) from cause
            else:
                while queue:
                    self.step()
        except _StopRun as stop:
            event = stop.event
            if event._ok:
                return event._value
            event._defused = True
            raise event._value
        finally:
            if stop_event is not None and stop_event.callbacks is not None:
                try:
                    stop_event.callbacks.remove(_stop_callback)
                except ValueError:  # pragma: no cover
                    pass

        if stop_event is not None and isinstance(until, Event):
            raise SimulationError(
                f"run(until={until!r}) ended before the event fired"
            )
        return None


def _stop_callback(event: Event) -> None:
    raise _StopRun(event)
