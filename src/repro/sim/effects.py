"""The virtual-time effects substrate.

:class:`SimEffects` is the simulator's implementation of the effects
boundary (:class:`repro.core.effects.Effects`).  It *is* the virtual-time
engine: :class:`~repro.sim.engine.Environment` implements the substrate
contract directly, so running protocol code "through SimEffects" is
byte-identical to the pre-refactor engine -- same calendar, same
``(time, priority, seq)`` total order, same traces.  The golden-digest
tests (``tests/fs/test_effects_golden.py``) pin exactly that.

The class exists (rather than a bare alias) so the substrate has a home
for sim-only conveniences that should not live on the engine, and so
``isinstance(env, SimEffects)`` names the substrate explicitly.
"""

from __future__ import annotations

from repro.sim.engine import Environment

__all__ = ["SimEffects"]


class SimEffects(Environment):
    """Virtual-time substrate: the engine, under its effects name.

    Subclasses :class:`Environment` without adding state or overriding
    behaviour, so construction sites may use either name
    interchangeably -- the factory keeps constructing ``Environment``
    and stays byte-identical to the seed.
    """

    __slots__ = ()
