"""Compatibility shim: processes now live in the kernel.

See :mod:`repro.core.kernel.process`; re-exported here so existing
imports and class-identity checks keep working unchanged.
"""

from repro.core.kernel.process import (  # noqa: F401
    Interrupt,
    Process,
    _Initialize,
    _Interruption,
)

__all__ = ["Interrupt", "Process"]
