"""Compatibility shim: the event primitives now live in the kernel.

The event classes moved to :mod:`repro.core.kernel.events` as part of the
effects-boundary refactor (they are substrate-neutral and shared with the
asyncio substrate).  This module re-exports them so existing imports --
and, importantly, identity checks like ``type(ev) is Timeout`` across the
codebase and tests -- keep working unchanged.
"""

from repro.core.kernel.events import (  # noqa: F401
    PENDING,
    PRIORITY_NORMAL,
    PRIORITY_URGENT,
    AllOf,
    AnyOf,
    Condition,
    ConditionValue,
    Event,
    Timeout,
)

__all__ = [
    "PENDING",
    "PRIORITY_NORMAL",
    "PRIORITY_URGENT",
    "AllOf",
    "AnyOf",
    "Condition",
    "ConditionValue",
    "Event",
    "Timeout",
]
