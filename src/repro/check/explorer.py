"""Systematic crash-schedule exploration ("Jepsen in virtual time").

Because the whole cluster runs inside a deterministic discrete-event
simulation, the checker can do what a real-hardware Jepsen cannot:
*enumerate* crash schedules.  The explorer runs three schedule families
against the same seeded workload:

1. **Probe** -- one fault-free run whose causal trace yields the
   timestamps at which each protocol transition point actually fired.
2. **Crash points** -- for every sampled transition timestamp ``t``, a
   schedule that cuts power at ``t + eps``: the state "just after" the
   protocol advanced, exactly the window an ordering bug exposes.
3. **Nemesis** -- seeded random fault combinations (loss, delay,
   partitions, MDS restarts, client deaths, optional crash cut) layered
   on the :mod:`repro.faults` injector.

Every schedule is judged by the oracle (:mod:`repro.check.oracle`); a
failing schedule is shrunk with ddmin (:mod:`repro.check.shrinker`) to a
minimal clause list that is directly replayable via ``repro run
--faults '<spec>'``.  Everything -- schedule generation, the runs, the
report -- is a pure function of ``(seed, budget, scope)``: two
invocations produce byte-identical reports.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass, field

from repro.check.oracle import Verdict, judge_crash, judge_live
from repro.check.schedule import compose, describe, schedule_events
from repro.check.shrinker import ddmin
from repro.check.transitions import TransitionCoverage, transition_times
from repro.check.workload import CheckWorkload
from repro.consistency.crash import crash_cluster
from repro.faults.injector import FaultInjector
from repro.faults.spec import FaultSpec
from repro.fs.config import ClusterConfig
from repro.fs.redbud import RedbudCluster
from repro.mds.server import MdsParameters
from repro.net.rpc import RetryPolicy
from repro.obs import Instrumentation
from repro.sim.rng import StreamRNG
from repro.workloads.spec import WorkloadContext

__all__ = ["RunOutcome", "Counterexample", "CheckReport", "run_schedule",
           "explore"]

#: Crash "just after" a transition: the event at ``t`` has executed,
#: nothing later has.
EPS = 1e-7
#: Short lease so reclamation (and fencing) is reachable within a run.
LEASE_DURATION = 0.12
GC_SCAN_INTERVAL = 0.03
#: Virtual seconds of steady-state load after workload setup.
RUN_SPAN = 0.35
#: Post-schedule drain (covers one full retry backoff at max_timeout).
SETTLE_GRACE = 1.5


@dataclass
class RunOutcome:
    """One schedule, executed and judged."""

    spec: FaultSpec
    verdict: Verdict
    crashed: bool
    obs: Instrumentation
    cluster: RedbudCluster


@dataclass
class Counterexample:
    """A failing schedule reduced to its essential clauses."""

    schedule: str
    minimal: str
    kinds: _t.List[str]
    shrink_probes: int
    seed: int = 0
    clients: int = 3
    shards: int = 1
    replication: str = "none"
    trace: _t.List[str] = field(default_factory=list)

    def as_dict(self) -> _t.Dict[str, _t.Any]:
        shards_arg = f" --shards {self.shards}" if self.shards > 1 else ""
        repl_arg = (
            f" --replication {self.replication}"
            if self.replication != "none"
            else ""
        )
        return {
            "schedule": self.schedule,
            "minimal": self.minimal,
            "minimal_clauses": len(
                [c for c in self.minimal.split(",") if c]
            ),
            "kinds": list(self.kinds),
            "shrink_probes": self.shrink_probes,
            "replay": (
                f"python -m repro run --faults '{self.minimal}' --check "
                f"--seed {self.seed} --clients {self.clients}"
                f"{shards_arg}{repl_arg}"
            ),
            "trace": list(self.trace),
        }


@dataclass
class CheckReport:
    """The whole exploration, JSON-ready and wall-clock free."""

    seed: int
    budget: int
    mode: str
    clients: int
    shards: int = 1
    replication: str = "none"
    schedules: _t.List[_t.Dict[str, _t.Any]] = field(default_factory=list)
    counterexamples: _t.List[Counterexample] = field(default_factory=list)
    coverage: _t.Dict[str, _t.Any] = field(default_factory=dict)
    shrink_probes: int = 0

    @property
    def failures(self) -> int:
        return sum(1 for s in self.schedules if not s["ok"])

    @property
    def ok(self) -> bool:
        return self.failures == 0

    def as_dict(self) -> _t.Dict[str, _t.Any]:
        return {
            "seed": self.seed,
            "budget": self.budget,
            "mode": self.mode,
            "clients": self.clients,
            "shards": self.shards,
            "replication": self.replication,
            "schedules_run": len(self.schedules),
            "failures": self.failures,
            "ok": self.ok,
            "coverage": self.coverage,
            "schedules": self.schedules,
            "counterexamples": [
                c.as_dict() for c in self.counterexamples
            ],
            "shrink_probes": self.shrink_probes,
        }

    def summary(self) -> str:
        cov = self.coverage.get("fraction", 0.0)
        return (
            f"check: {len(self.schedules)} schedules, "
            f"{self.failures} failing, coverage {cov:.0%}, "
            f"{len(self.counterexamples)} counterexample(s)"
        )


def run_schedule(
    spec: FaultSpec,
    *,
    seed: int,
    clients: int = 3,
    mode: str = "delayed",
    shards: int = 1,
    replication: str = "none",
    run_span: float = RUN_SPAN,
    tweak: _t.Optional[_t.Callable[[RedbudCluster], None]] = None,
    workload: _t.Optional[CheckWorkload] = None,
) -> RunOutcome:
    """Execute one schedule against the check workload and judge it.

    ``tweak`` mutates the freshly built cluster before anything runs --
    the hook the self-test uses to seed a deliberate bug (e.g. disabling
    the MDS commit dedup table) and prove the checker finds it.
    ``workload`` swaps the driving mix (the soak shrinker replays with
    its slow-trickle workload so rebased long-horizon windows stay
    cheap); default is the standard check mix.
    """
    config = ClusterConfig(
        num_clients=clients,
        commit_mode=mode,
        space_delegation=(mode != "synchronous"),
        mds=MdsParameters(
            lease_duration=LEASE_DURATION,
            gc_scan_interval=GC_SCAN_INTERVAL,
            shards=shards,
        ),
        retry=None if spec.empty else RetryPolicy(),
        replication=replication,
        # Small witness budget so the overflow fallback is reachable
        # inside a short check run, not just at bench scale.
        witness_capacity=16,
    )
    obs = Instrumentation()
    cluster = RedbudCluster(config, seed=seed, obs=obs)
    if tweak is not None:
        tweak(cluster)
    injector = FaultInjector(cluster, spec) if not spec.empty else None

    env = cluster.env
    if workload is None:
        workload = CheckWorkload()
    shared: _t.Dict[str, _t.Any] = {}
    from repro.analysis.metrics import OpMetrics

    contexts = [
        WorkloadContext(
            env=env,
            fs=cluster.clients[i],
            rng=cluster.root_rng.stream("wl", i),
            client_index=i,
            num_clients=clients,
            metrics=OpMetrics(),
            shared=shared,
        )
        for i in range(clients)
    ]
    setups = [env.process(workload.setup(ctx)) for ctx in contexts]

    halt = {"stop": False}

    def forever(ctx: WorkloadContext, tid: int) -> _t.Generator:
        while not halt["stop"]:
            yield from workload.op(ctx, tid)
            yield from workload.think(ctx)

    def driver() -> _t.Generator:
        yield env.all_of(setups)
        cluster.setup_complete = True
        for ctx in contexts:
            ctx.in_setup = False
            for tid in range(workload.threads_per_client):
                env.process(forever(ctx, tid), name=f"check-op-{tid}")

    env.process(driver(), name="check-driver")

    if spec.crash_at is not None:
        state = crash_cluster(
            cluster, at_time=max(spec.crash_at, env.now)
        )
        return RunOutcome(
            spec=spec,
            verdict=judge_crash(cluster, state),
            crashed=True,
            obs=obs,
            cluster=cluster,
        )

    env.run(until=env.all_of(setups))
    env.run(until=env.now + run_span)
    halt["stop"] = True
    if injector is not None:
        injector.stop()
    cluster.settle(grace=SETTLE_GRACE)
    return RunOutcome(
        spec=spec,
        verdict=judge_live(cluster),
        crashed=False,
        obs=obs,
        cluster=cluster,
    )


def _nemesis_spec(
    rng: StreamRNG,
    clients: int,
    shards: int = 1,
    replication: str = "none",
) -> FaultSpec:
    """Draw one random fault combination as canonical clause atoms.

    At ``shards == 1, replication == "none"`` the draw sequence is
    frozen (CI asserts reports are byte-identical across runs *and*
    releases); sharded clauses gate on ``shards > 1`` and the disk-loss
    family gates on a replicated cluster -- each only adds draws inside
    its own gate, so arming one axis never perturbs the other.
    """
    from repro.storage.groups import arrangement_named

    clauses: _t.List[str] = []
    replicated = replication != "none"
    num_families = 8 + (1 if shards > 1 else 0) + (1 if replicated else 0)
    shard_family = 8 if shards > 1 else None
    disk_family = num_families - 1 if replicated else None
    family = rng.integers(0, num_families)
    t0 = round(rng.uniform(0.05, 0.30), 4)

    def restart_clause(at: float, down: float) -> str:
        """mds_restart, aimed at one shard half the time when sharded."""
        if shards > 1 and rng.random() < 0.5:
            sid = rng.integers(0, shards)
            return f"mds_restart@{at!r}:{down!r}:shard={sid}"
        return f"mds_restart@{at!r}:{down!r}"

    if family == 0:
        clauses.append(f"loss={round(rng.uniform(0.02, 0.25), 3)!r}")
    elif family == 1:
        clauses.append(
            f"delay={round(rng.uniform(0.05, 0.3), 3)!r}"
            f":{round(rng.uniform(0.001, 0.02), 4)!r}"
        )
    elif family == 2:
        cid = rng.integers(0, clients)
        t1 = round(t0 + rng.uniform(0.05, 0.20), 4)
        clauses.append(f"partition={cid}@{t0!r}-{t1!r}")
    elif family == 3:
        down = round(rng.uniform(0.05, 0.20), 4)
        clauses.append(restart_clause(t0, down))
    elif family == 4:
        cid = rng.integers(0, clients)
        clauses.append(f"client_death={cid}@{t0!r}")
    elif family == 5:
        # Reply loss around an MDS restart: the retransmit-after-
        # restart pattern that stresses exactly-once commit handling.
        clauses.append(f"loss={round(rng.uniform(0.05, 0.3), 3)!r}")
        down = round(rng.uniform(0.05, 0.20), 4)
        clauses.append(restart_clause(t0, down))
    elif family == 6:
        cid = rng.integers(0, clients)
        t1 = round(t0 + rng.uniform(0.13, 0.25), 4)
        clauses.append(f"partition={cid}@{t0!r}-{t1!r}")
        down = round(rng.uniform(0.05, 0.15), 4)
        clauses.append(restart_clause(round(t0 + 0.05, 4), down))
    elif family == 7:
        clauses.append(f"loss={round(rng.uniform(0.02, 0.15), 3)!r}")
        cid = rng.integers(0, clients)
        clauses.append(f"client_death={cid}@{t0!r}")
    elif family == shard_family:
        # Sharded deployments only: cut one metadata shard off from
        # every client while the others keep serving.
        sid = rng.integers(0, shards)
        t1 = round(t0 + rng.uniform(0.08, 0.22), 4)
        clauses.append(f"shard_partition={sid}@{t0!r}-{t1!r}")
    elif family == disk_family:
        # Replicated clusters only: destroy replica members, staying
        # inside the arrangement's fault budget; half the losses
        # rebuild (readmit + re-silver) mid-run.
        arr = arrangement_named(replication)
        member = rng.integers(0, arr.size)
        if rng.random() < 0.5:
            rebuild = round(rng.uniform(0.05, 0.20), 4)
            clauses.append(f"disk_loss={member}@{t0!r}:{rebuild!r}")
        else:
            clauses.append(f"disk_loss={member}@{t0!r}")
        if arr.tolerates >= 2 and rng.random() < 0.4:
            second = rng.integers(0, arr.size)
            if second != member:
                at2 = round(t0 + rng.uniform(0.02, 0.10), 4)
                clauses.append(f"disk_loss={second}@{at2!r}")
    if rng.random() < 0.35:
        clauses.append(f"crash@{round(rng.uniform(0.10, 0.50), 4)!r}")
    return compose(clauses)


def _trace_excerpt(
    outcome: RunOutcome, limit: int = 40
) -> _t.List[str]:
    """Causal context for a counterexample: faults + commit lifecycle."""
    tracer = outcome.obs.tracer
    interesting = {
        "commit_apply", "journal_write", "lease_reclaim", "array_fence",
        "write_fenced", "partition_start", "partition_end",
        "message_drop", "message_delay", "partition_drop",
        "witness_commit",
    }
    lines: _t.List[_t.Tuple[float, str]] = []
    for event in tracer.events:
        if event.cat == "fault" or event.name in interesting:
            detail = " ".join(
                f"{k}={v}" for k, v in sorted(event.args.items())
            )
            lines.append(
                (
                    event.time,
                    f"t={event.time:.6f} {event.name} "
                    f"[{event.node}] {detail}".rstrip(),
                )
            )
    for span in tracer.spans_named("rpc:commit"):
        lines.append(
            (
                span.start,
                f"t={span.start:.6f} rpc:commit sent "
                f"updates={list(span.update_ids)}",
            )
        )
    lines.sort(key=lambda pair: pair[0])
    if len(lines) > limit:
        # Keep the tail: the violation is at the end of the causal story.
        lines = lines[-limit:]
    return [text for _, text in lines]


def explore(
    budget: int = 200,
    seed: int = 0,
    *,
    clients: int = 3,
    mode: str = "delayed",
    shards: int = 1,
    replication: str = "none",
    tweak: _t.Optional[_t.Callable[[RedbudCluster], None]] = None,
    max_counterexamples: int = 3,
    shrink_probe_budget: int = 24,
    samples_per_point: int = 3,
    log: _t.Optional[_t.Callable[[str], None]] = None,
) -> CheckReport:
    """Run up to ``budget`` schedules and report coverage + verdicts.

    The budget counts judged schedules (probe + crash points +
    nemesis); shrinking uses a separate bounded probe budget per
    counterexample so a pathological failure cannot eat the whole run.
    """
    if budget < 1:
        raise ValueError("budget must be >= 1")
    report = CheckReport(
        seed=seed, budget=budget, mode=mode, clients=clients,
        shards=shards, replication=replication,
    )
    coverage = TransitionCoverage()
    say = log if log is not None else (lambda _msg: None)

    def record(
        kind: str, spec: FaultSpec, outcome: RunOutcome
    ) -> None:
        coverage.observe(outcome.obs)
        report.schedules.append(
            {
                "kind": kind,
                "spec": spec.serialize(),
                "describe": describe(spec),
                "ok": outcome.verdict.ok,
                "crashed": outcome.crashed,
                "violation_kinds": outcome.verdict.kinds(),
            }
        )

    def runner(spec: FaultSpec) -> RunOutcome:
        return run_schedule(
            spec, seed=seed, clients=clients, mode=mode, shards=shards,
            replication=replication, tweak=tweak,
        )

    # 1. Probe: fault-free baseline + transition timestamps.
    probe = runner(FaultSpec())
    record("probe", probe.spec, probe)
    candidates = transition_times(
        probe.obs, samples_per_point=samples_per_point
    )
    say(
        f"probe: {len(candidates)} crash candidates across "
        f"{len(coverage.covered)} live transition points"
    )

    # 2. Crash-point schedules.
    failures: _t.List[RunOutcome] = []
    remaining = budget - 1
    crash_specs = [
        (name, FaultSpec(crash_at=t + EPS))
        for name, t in candidates[: max(0, remaining)]
    ]
    for name, spec in crash_specs:
        outcome = runner(spec)
        record(f"crash-point:{name}", spec, outcome)
        if not outcome.verdict.ok:
            failures.append(outcome)
        remaining -= 1

    # 3. Nemesis schedules fill the rest of the budget.
    nemesis_root = StreamRNG(seed).stream("check", "nemesis")
    for i in range(max(0, remaining)):
        spec = _nemesis_spec(
            nemesis_root.stream(i), clients, shards, replication
        )
        outcome = runner(spec)
        record("nemesis", spec, outcome)
        if not outcome.verdict.ok:
            failures.append(outcome)

    say(
        f"explored {len(report.schedules)} schedules: "
        f"{report.failures} failing"
    )

    # 4. Shrink the first few failures to minimal counterexamples.
    for outcome in failures[:max_counterexamples]:
        clauses = schedule_events(outcome.spec)

        def fails(subset: _t.List[str]) -> bool:
            return not runner(compose(subset)).verdict.ok

        if len(clauses) <= 1:
            minimal, probes = clauses, 0
        else:
            minimal, probes = ddmin(
                clauses, fails, max_probes=shrink_probe_budget
            )
        report.shrink_probes += probes
        minimal_spec = compose(minimal)
        replay = runner(minimal_spec)
        report.counterexamples.append(
            Counterexample(
                schedule=outcome.spec.serialize(),
                minimal=minimal_spec.serialize(),
                kinds=replay.verdict.kinds() or outcome.verdict.kinds(),
                shrink_probes=probes,
                seed=seed,
                clients=clients,
                shards=shards,
                replication=replication,
                trace=_trace_excerpt(replay),
            )
        )
        say(
            f"shrunk {len(clauses)} -> {len(minimal)} clause(s) "
            f"in {probes} probes: {minimal_spec.serialize()!r}"
        )

    report.coverage = coverage.report()
    return report
