"""Long-horizon soak runs: continuous oracles under a tracked nemesis.

``repro check`` judges *short* schedules after they settle; the soak
harness (ROADMAP 4b) keeps one cluster alive for virtual hours while a
:class:`~repro.faults.nemesis.TrackedNemesis` plan continuously injects
and heals faults, and evaluates oracles *while the run is going*:

- periodic :func:`~repro.check.oracle.judge_live` sweeps (safety
  invariants must hold mid-churn, not just at quiescence);
- **liveness probes**: after each fault heals, the system must
  re-converge within :data:`~repro.faults.nemesis.CONVERGENCE_GRACE`
  virtual seconds -- delayed->sync degradation reverts, commit queues
  drain below the degradation threshold, lease GC resumes after an MDS
  restart, re-silvering completes after a disk readmit, and the CURP
  witness backlog stays below capacity;
- a **stuck-progress detector**: a window in which the MDS processed
  no request while no fault was live is a liveness violation.

Violations are checked against the live fault registry (the
:class:`~repro.faults.tracking.FaultTracker` the injector maintains):
anything overlapping a live fault's blast radius -- or a fault that
healed within the convergence grace -- is *excused-and-tagged* in the
report rather than failing the run.  Unexcused violations fail the
soak, and the fault window around the first one is rebased to the
short-horizon check harness and handed to ddmin, yielding a minimal
schedule replayable with ``repro run --workload soak --faults
'<minimal>' --check``.

Everything is virtual-time deterministic: same seed and parameters,
byte-identical JSONL reports.  Soaks run untraced (``obs=None``) so
memory stays bounded over tens of virtual hours.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass, field

from repro.check.explorer import (
    GC_SCAN_INTERVAL,
    LEASE_DURATION,
    SETTLE_GRACE,
    run_schedule,
)
from repro.check.oracle import Verdict, judge_live
from repro.check.schedule import compose
from repro.check.shrinker import ddmin
from repro.check.workload import CheckWorkload
from repro.faults.injector import FaultInjector
from repro.faults.nemesis import (
    CONVERGENCE_GRACE,
    NemesisAction,
    TrackedNemesis,
)
from repro.faults.tracking import CLUSTER_WIDE, FaultTracker
from repro.fs.config import ClusterConfig
from repro.fs.redbud import RedbudCluster
from repro.mds.server import MdsParameters
from repro.net.rpc import RetryPolicy
from repro.sim.rng import StreamRNG
from repro.workloads.spec import WorkloadContext, timed

__all__ = [
    "SoakReport",
    "SoakViolation",
    "SoakWorkload",
    "judge_converged",
    "probe_client_converged",
    "probe_mds_converged",
    "probe_resilver_complete",
    "probe_witness_converged",
    "run_soak",
    "seed_bug_tweak",
]

HOUR = 3600.0
#: Stuck-progress detection window.
PROGRESS_WINDOW = 30.0
#: judge_live sweeps per soak (floored at one sweep per minute).
DEFAULT_SWEEPS = 24
#: Fault window handed to the shrinker around an unexcused violation.
SHRINK_LOOKBACK = 60.0
#: Client-death reclamation bound: lease expiry + a few GC scans.
DEATH_RECOVERY = LEASE_DURATION + 4 * GC_SCAN_INTERVAL + 0.25


class SoakWorkload(CheckWorkload):
    """The check mix at a slow trickle, sized for virtual hours.

    Same transition coverage as :class:`CheckWorkload` (appends,
    rewrites, fsyncs, create/unlink churn) but paced about one op per
    client-second so a 24-virtual-hour soak stays a few minutes of wall
    clock, with the scratch-file population capped so the namespace and
    volume stay bounded over the horizon.

    Unlike :class:`CheckWorkload`, the pacing lives *inside* ``op``
    (``think`` is a no-op): the bench driver behind ``repro run
    --workload soak`` loops over bare ``op`` calls, and a shrunk soak
    counterexample must reproduce under that driver with the same
    timing it failed with under the soak driver.
    """

    name = "soak"
    threads_per_client = 1
    think_time = 0.8
    scratch_cap = 8

    def op(self, ctx: WorkloadContext, thread_id: int) -> _t.Generator:
        yield from self._one(ctx, thread_id)
        yield ctx.env.timeout(ctx.rng.exponential(self.think_time))

    def think(self, ctx: WorkloadContext) -> _t.Generator:
        return
        yield  # pragma: no cover

    def _one(self, ctx: WorkloadContext, thread_id: int) -> _t.Generator:
        files = ctx.state["files"]
        entry = files[
            (thread_id + ctx.state.setdefault("rr", 0)) % len(files)
        ]
        ctx.state["rr"] += 1
        scratch = ctx.state["scratch"]
        if len(scratch) >= self.scratch_cap:
            yield from timed(ctx, "unlink", ctx.fs.unlink(scratch.pop(0)))
            return
        roll = ctx.rng.random()
        if roll < 0.40:
            offset = entry["cursor"] % self.wrap_size
            yield from timed(
                ctx, "write",
                ctx.fs.write(entry["id"], offset, self.io_size),
                nbytes=self.io_size,
            )
            entry["cursor"] = offset + self.io_size
        elif roll < 0.70:
            limit = max(entry["cursor"] - self.io_size, 0)
            offset = (
                int(ctx.rng.random() * (limit // self.io_size + 1))
                * self.io_size
            )
            yield from timed(
                ctx, "write",
                ctx.fs.write(entry["id"], offset, self.io_size),
                nbytes=self.io_size,
            )
        elif roll < 0.82:
            yield from timed(ctx, "fsync", ctx.fs.fsync(entry["id"]))
        elif roll < 0.91 or not scratch:
            name = ctx.unique_name("scratch")
            file_id = yield from timed(ctx, "create", ctx.fs.create(name))
            yield from timed(
                ctx, "write",
                ctx.fs.write(file_id, 0, self.io_size),
                nbytes=self.io_size,
            )
            scratch.append(file_id)
        else:
            yield from timed(ctx, "unlink", ctx.fs.unlink(scratch.pop(0)))


# -- convergence probes ----------------------------------------------------
#
# Each probe inspects one healed-fault family's "did the system come
# back?" condition and returns ``(kind, detail)`` violations.  They are
# plain functions so the heal-path tests exercise them directly.

def probe_client_converged(
    cluster: RedbudCluster, client_id: int
) -> _t.List[_t.Tuple[str, str]]:
    """Delayed->sync degradation reverted and the backlog drained."""
    client = cluster.clients[client_id]
    if getattr(client, "crashed", False):
        return []
    out = []
    if getattr(client, "degraded", False):
        out.append(
            (
                "liveness-degrade-stuck",
                f"client {client_id} still in sync fallback "
                f"(transitions={client.degrade_transitions})",
            )
        )
    backlog = (
        len(client.commit_queue) if client.commit_queue is not None else 0
    )
    threshold = getattr(client, "degrade_backlog", 0) // 2
    if threshold and backlog > threshold:
        out.append(
            (
                "liveness-commit-backlog",
                f"client {client_id} commit queue holds {backlog} "
                f"records (> drain threshold {threshold})",
            )
        )
    return out


def probe_mds_converged(
    cluster: RedbudCluster, shard: _t.Optional[int] = None
) -> _t.List[_t.Tuple[str, str]]:
    """MDS back up and its lease GC resumed after a restart."""
    servers = (
        list(cluster.metadata)
        if shard is None
        else [cluster.metadata.shard(shard)]
    )
    out = []
    for index, server in enumerate(servers):
        label = shard if shard is not None else index
        if server.down:
            out.append(
                ("liveness-mds-down", f"metadata shard {label} still down")
            )
        elif server.gc is not None and server.gc.paused:
            out.append(
                (
                    "liveness-gc-paused",
                    f"lease GC on shard {label} did not resume",
                )
            )
    return out


def probe_witness_converged(
    cluster: RedbudCluster,
) -> _t.List[_t.Tuple[str, str]]:
    """CURP witness backlog syncing (not saturated at capacity)."""
    witnesses = getattr(cluster, "witnesses", None)
    if witnesses is None:
        return []
    if len(witnesses) >= witnesses.capacity:
        return [
            (
                "liveness-witness-backlog",
                f"{len(witnesses)} unsynced witnessed ops at capacity "
                f"{witnesses.capacity}",
            )
        ]
    return []


def probe_resilver_complete(
    cluster: RedbudCluster, member: int, since: float
) -> _t.List[_t.Tuple[str, str]]:
    """Disk readmitted and its re-silver finished after ``since``."""
    group = getattr(cluster, "group", None)
    if group is None:
        return [
            ("liveness-resilver-incomplete", "no storage group to probe")
        ]
    if not group.members[member].alive:
        return [
            (
                "liveness-resilver-incomplete",
                f"member {member} still dead after readmit deadline",
            )
        ]
    if group.last_resilver_at is None or group.last_resilver_at < since:
        return [
            (
                "liveness-resilver-incomplete",
                f"no re-silver completed since t={since:.3f}",
            )
        ]
    return []


def judge_converged(cluster: RedbudCluster) -> Verdict:
    """Final liveness judgement on a settled cluster.

    After a schedule's faults stop and the system drains, every alive
    client must be back on the delayed path with its backlog drained,
    every MDS up with lease GC running, and the witness backlog below
    capacity.  The ``converge-*`` kinds mirror the mid-soak probe kinds
    so a shrunk replay fails the same way the soak did.
    """
    verdict = Verdict()
    degraded = 0
    for client_id in range(len(cluster.clients)):
        for kind, detail in probe_client_converged(cluster, client_id):
            verdict.add(kind.replace("liveness-", "converge-"), detail)
            if "degrade" in kind:
                degraded += 1
    for kind, detail in probe_mds_converged(cluster):
        verdict.add(kind.replace("liveness-", "converge-"), detail)
    for kind, detail in probe_witness_converged(cluster):
        verdict.add(kind.replace("liveness-", "converge-"), detail)
    alive = sum(
        1 for c in cluster.clients if not getattr(c, "crashed", False)
    )
    verdict.summaries.append(
        f"converged: {alive}/{len(cluster.clients)} clients alive, "
        f"{degraded} stuck degraded"
    )
    return verdict


def seed_bug_tweak(
    name: str,
) -> _t.Optional[_t.Callable[[RedbudCluster], None]]:
    """Cluster tweaks that plant a deliberate bug (self-tests)."""
    if name == "dedup":

        def tweak(cluster: RedbudCluster) -> None:
            cluster.metadata.set_commit_dedup_enabled(False)

        return tweak
    if name == "degrade":
        # Suppress the delayed->sync reversion: once a fault pushes a
        # client into sync fallback it never recovers -- a pure
        # *liveness* bug that only the convergence oracles can see.
        def tweak(cluster: RedbudCluster) -> None:
            for client in cluster.clients:
                client.degrade_exit_enabled = False

        return tweak
    if name in ("", "none"):
        return None
    raise ValueError(f"unknown seed bug {name!r}")


# -- the report ------------------------------------------------------------

@dataclass
class SoakViolation:
    """One oracle finding, tagged with its excusal status."""

    time: float
    source: str  # "oracle" | "liveness" | "progress" | "final"
    kind: str
    detail: str
    excused: bool
    excused_by: _t.List[int] = field(default_factory=list)

    def as_dict(self) -> _t.Dict[str, _t.Any]:
        return {
            "t": self.time,
            "source": self.source,
            "kind": self.kind,
            "detail": self.detail,
            "excused": self.excused,
            "excused_by": list(self.excused_by),
        }


@dataclass
class SoakReport:
    """One soak run, JSON-ready and wall-clock free."""

    seed: int
    hours: float
    intensity: float
    clients: int
    mode: str
    shards: int
    replication: str
    seed_bug: str = "none"
    actions: _t.List[_t.Dict[str, _t.Any]] = field(default_factory=list)
    violations: _t.List[SoakViolation] = field(default_factory=list)
    sweeps_run: int = 0
    faults_injected: _t.Dict[str, int] = field(default_factory=dict)
    counterexample: _t.Optional[_t.Dict[str, _t.Any]] = None

    @property
    def unexcused(self) -> int:
        return sum(1 for v in self.violations if not v.excused)

    @property
    def excused(self) -> int:
        return sum(1 for v in self.violations if v.excused)

    @property
    def ok(self) -> bool:
        return self.unexcused == 0

    def as_dict(self) -> _t.Dict[str, _t.Any]:
        return {
            "seed": self.seed,
            "hours": self.hours,
            "intensity": self.intensity,
            "clients": self.clients,
            "mode": self.mode,
            "shards": self.shards,
            "replication": self.replication,
            "seed_bug": self.seed_bug,
            "actions": len(self.actions),
            "sweeps": self.sweeps_run,
            "violations": [v.as_dict() for v in self.violations],
            "excused": self.excused,
            "unexcused": self.unexcused,
            "ok": self.ok,
            "faults_injected": dict(self.faults_injected),
            "counterexample": self.counterexample,
        }

    def summary(self) -> str:
        return (
            f"soak: {self.hours:g}h virtual, {len(self.actions)} nemesis "
            f"actions, {self.sweeps_run} sweeps, {self.excused} excused / "
            f"{self.unexcused} unexcused violation(s)"
        )


# -- the run ---------------------------------------------------------------

def run_soak(
    hours: float,
    seed: int = 0,
    *,
    intensity: float = 1.0,
    clients: int = 4,
    mode: str = "delayed",
    shards: int = 1,
    replication: str = "none",
    scheduler: _t.Optional[str] = None,
    seed_bug: str = "none",
    sweeps: int = DEFAULT_SWEEPS,
    shrink: bool = True,
    emit: _t.Optional[_t.Callable[[_t.Dict[str, _t.Any]], None]] = None,
) -> SoakReport:
    """Run one soak and return the judged report.

    ``emit``, when given, receives each timeline entry (inject, heal,
    violation, sweep, summary) as a JSON-ready dict the moment it is
    produced -- the incremental JSONL feed behind ``repro soak --out``.
    """
    if hours <= 0:
        raise ValueError(f"hours must be positive: {hours}")
    horizon = hours * HOUR
    tweak = seed_bug_tweak(seed_bug)
    report = SoakReport(
        seed=seed, hours=hours, intensity=intensity, clients=clients,
        mode=mode, shards=shards, replication=replication,
        seed_bug=seed_bug,
    )
    out = emit if emit is not None else (lambda payload: None)

    config_kw: _t.Dict[str, _t.Any] = {}
    if scheduler is not None:
        config_kw["scheduler"] = scheduler
    config = ClusterConfig(
        num_clients=clients,
        commit_mode=mode,
        space_delegation=(mode != "synchronous"),
        mds=MdsParameters(
            lease_duration=LEASE_DURATION,
            gc_scan_interval=GC_SCAN_INTERVAL,
            shards=shards,
        ),
        retry=RetryPolicy(),
        replication=replication,
        witness_capacity=16,
        **config_kw,
    )
    # Untraced on purpose: a tracer over tens of virtual hours would
    # hold millions of events; the FaultTracker carries the excusal
    # state the oracles need without a trace.
    cluster = RedbudCluster(config, seed=seed, obs=None)
    if tweak is not None:
        tweak(cluster)

    nemesis = TrackedNemesis(
        StreamRNG(seed).stream("soak", "nemesis"),
        horizon,
        clients,
        shards=shards,
        replication=replication,
        intensity=intensity,
        death_recovery=DEATH_RECOVERY,
    )
    actions = nemesis.sample()
    report.actions = [a.as_dict() for a in actions]
    spec = compose([a.clause for a in actions])
    injector = (
        FaultInjector(cluster, spec) if not spec.empty else None
    )
    tracker = injector.tracker if injector is not None else FaultTracker()

    env = cluster.env
    workload = SoakWorkload()
    shared: _t.Dict[str, _t.Any] = {}
    from repro.analysis.metrics import OpMetrics

    contexts = [
        WorkloadContext(
            env=env,
            fs=cluster.clients[i],
            rng=cluster.root_rng.stream("wl", i),
            client_index=i,
            num_clients=clients,
            metrics=OpMetrics(),
            shared=shared,
        )
        for i in range(clients)
    ]
    setups = [env.process(workload.setup(ctx)) for ctx in contexts]
    halt = {"stop": False}

    def forever(ctx: WorkloadContext, tid: int) -> _t.Generator:
        while not halt["stop"]:
            yield from workload.op(ctx, tid)
            yield from workload.think(ctx)

    def driver() -> _t.Generator:
        yield env.all_of(setups)
        cluster.setup_complete = True
        for ctx in contexts:
            ctx.in_setup = False
            for tid in range(workload.threads_per_client):
                env.process(forever(ctx, tid), name=f"soak-op-{tid}")

    env.process(driver(), name="soak-driver")
    env.run(until=env.all_of(setups))
    start = env.now
    end_time = start + horizon

    def record(
        source: str,
        kind: str,
        detail: str,
        lo: float,
        hi: float,
        grace: float,
        exclude_id: _t.Optional[int] = None,
    ) -> None:
        excusers = [
            r
            for r in tracker.excusers(CLUSTER_WIDE, lo, hi, grace=grace)
            if r.fault_id != exclude_id
        ]
        violation = SoakViolation(
            time=round(env.now, 6),
            source=source,
            kind=kind,
            detail=detail,
            excused=bool(excusers),
            excused_by=[r.fault_id for r in excusers],
        )
        report.violations.append(violation)
        out({"event": "violation", **violation.as_dict()})

    def find_record(action: NemesisAction) -> _t.Optional[_t.Any]:
        for r in tracker.records:
            if (
                r.kind == action.kind
                and r.scope == action.scope
                and abs(r.start - action.start) < 0.5
            ):
                return r
        return None

    def timeline() -> _t.Generator:
        """Emit inject/heal entries; heal client-death records once the
        lease GC has reclaimed the corpse (their excusal window ends)."""
        entries = sorted(
            [(a.start, 0, "inject", a) for a in actions]
            + [(a.end, 1, "heal", a) for a in actions]
        )
        for when, _tie, what, action in entries:
            if when > env.now:
                yield env.timeout(when - env.now)
            if halt["stop"]:
                return
            if what == "heal" and action.kind == "client_death":
                rec = find_record(action)
                if rec is not None:
                    tracker.heal(rec, env.now)
            out(
                {
                    "event": what,
                    "t": round(env.now, 6),
                    "kind": action.kind,
                    "clause": action.clause,
                    "scope": list(action.scope),
                }
            )

    def probe(action: NemesisAction) -> _t.Generator:
        target = action.end + CONVERGENCE_GRACE
        if target > env.now:
            yield env.timeout(target - env.now)
        if halt["stop"]:
            return
        rec = find_record(action)
        self_id = rec.fault_id if rec is not None else None
        lo = (
            rec.healed_at
            if rec is not None and rec.healed_at is not None
            else action.end
        )
        findings: _t.List[_t.Tuple[str, str]] = []
        if action.kind == "disk_loss":
            findings += probe_resilver_complete(
                cluster, int(action.scope[1]), action.start
            )
        elif action.kind == "client_death":
            return  # Healed by the timeline; nothing converges back.
        else:
            if action.kind == "partition":
                targets = [int(action.scope[1])]
            else:
                targets = list(range(clients))
            for cid in targets:
                findings += probe_client_converged(cluster, cid)
            if action.kind == "mds_restart":
                shard_arg = (
                    int(action.scope[1])
                    if action.scope[0] == "shard"
                    else None
                )
                findings += probe_mds_converged(cluster, shard_arg)
            if action.kind in ("loss_burst", "delay_burst"):
                findings += probe_witness_converged(cluster)
        for kind, detail in findings:
            record(
                "liveness", kind,
                f"{detail} ({action.kind} healed at t={lo:.3f})",
                lo, env.now, grace=0.0, exclude_id=self_id,
            )

    def progress_monitor() -> _t.Generator:
        last = sum(s.requests_processed for s in cluster.metadata)
        lo = env.now
        while not halt["stop"]:
            yield env.timeout(PROGRESS_WINDOW)
            if halt["stop"]:
                return
            current = sum(
                s.requests_processed for s in cluster.metadata
            )
            hi = env.now
            if current == last:
                record(
                    "progress", "stuck-progress",
                    f"no MDS request processed in "
                    f"[{lo:.1f}, {hi:.1f})",
                    lo, hi, grace=CONVERGENCE_GRACE,
                )
            last = current
            lo = hi

    def sweep_monitor() -> _t.Generator:
        interval = max(60.0, horizon / max(1, sweeps))
        prev = env.now
        while not halt["stop"]:
            yield env.timeout(interval)
            if halt["stop"]:
                return
            verdict = judge_live(cluster)
            report.sweeps_run += 1
            out(
                {
                    "event": "sweep",
                    "t": round(env.now, 6),
                    "ok": verdict.ok,
                    "violations": len(verdict.violations),
                }
            )
            for kind, detail in verdict.violations:
                record(
                    "oracle", kind, detail, prev, env.now,
                    grace=CONVERGENCE_GRACE,
                )
            prev = env.now

    env.process(timeline(), name="soak-timeline")
    env.process(progress_monitor(), name="soak-progress")
    env.process(sweep_monitor(), name="soak-sweeps")
    for action in actions:
        env.process(probe(action), name=f"soak-probe-{action.start}")

    env.run(until=end_time)
    halt["stop"] = True
    if injector is not None:
        injector.stop()
    cluster.settle(grace=SETTLE_GRACE)

    # Final judgement on the quiescent cluster: the nemesis plan left
    # the tail fault-free, so nothing here is excusable.
    final_live = judge_live(cluster)
    for kind, detail in final_live.violations:
        record("final", kind, detail, end_time, env.now, grace=0.0)
    for kind, detail in judge_converged(cluster).violations:
        record("final", kind, detail, end_time, env.now, grace=0.0)
    if injector is not None:
        report.faults_injected = injector.summary()

    if shrink and not report.ok:
        report.counterexample = _shrink(
            report, actions, seed=seed, clients=clients, mode=mode,
            shards=shards, replication=replication, tweak=tweak,
            seed_bug=seed_bug,
        )
    out({"event": "summary", **report.as_dict()})
    return report


# -- shrinking a failing window --------------------------------------------

def _round6(value: float) -> float:
    return round(value, 6)


def _shift_clauses(
    clauses: _t.List[str], delta: float
) -> _t.List[str]:
    """Rebase absolute clause times by ``-delta`` (scalars unchanged)."""
    spec = compose(clauses)
    out: _t.List[str] = []
    if spec.loss > 0.0:
        out.append(f"loss={spec.loss!r}")
    if spec.delay_prob > 0.0:
        out.append(f"delay={spec.delay_prob!r}:{spec.delay_max!r}")
    for lb in spec.loss_bursts:
        out.append(
            f"loss={lb.prob!r}@{_round6(lb.start - delta)!r}"
            f"-{_round6(lb.end - delta)!r}"
        )
    for db in spec.delay_bursts:
        out.append(
            f"delay={db.prob!r}:{db.max_delay!r}"
            f"@{_round6(db.start - delta)!r}-{_round6(db.end - delta)!r}"
        )
    for p in spec.partitions:
        out.append(
            f"partition={p.client_id}@{_round6(p.start - delta)!r}"
            f"-{_round6(p.end - delta)!r}"
        )
    for r in spec.mds_restarts:
        clause = f"mds_restart@{_round6(r.at - delta)!r}:{r.downtime!r}"
        if r.shard is not None:
            clause += f":shard={r.shard}"
        out.append(clause)
    for sp in spec.shard_partitions:
        out.append(
            f"shard_partition={sp.shard}@{_round6(sp.start - delta)!r}"
            f"-{_round6(sp.end - delta)!r}"
        )
    for death in spec.client_deaths:
        out.append(
            f"client_death={death.client_id}@{_round6(death.at - delta)!r}"
        )
    for dl in spec.disk_losses:
        clause = f"disk_loss={dl.member}@{_round6(dl.at - delta)!r}"
        if dl.rebuild_after is not None:
            clause += f":{dl.rebuild_after!r}"
        out.append(clause)
    return out


def _shrink(
    report: SoakReport,
    actions: _t.List[NemesisAction],
    *,
    seed: int,
    clients: int,
    mode: str,
    shards: int,
    replication: str,
    tweak: _t.Optional[_t.Callable[[RedbudCluster], None]],
    seed_bug: str,
    max_probes: int = 24,
) -> _t.Optional[_t.Dict[str, _t.Any]]:
    """Rebase the fault window around the first unexcused violation to
    the short-horizon check harness and ddmin it to a minimal schedule.
    """
    first = next((v for v in report.violations if not v.excused), None)
    if first is None:
        return None
    window = [
        a
        for a in actions
        if a.end >= first.time - SHRINK_LOOKBACK and a.start <= first.time
    ]
    if not window:
        return None
    delta = min(a.start for a in window) - 0.35
    span = max(a.end for a in window) - delta + CONVERGENCE_GRACE
    shifted = _shift_clauses([a.clause for a in window], delta)

    def fails(subset: _t.List[str]) -> bool:
        outcome = run_schedule(
            compose(subset), seed=seed, clients=clients, mode=mode,
            shards=shards, replication=replication, run_span=span,
            tweak=tweak, workload=SoakWorkload(),
        )
        if not outcome.verdict.ok:
            return True
        return not judge_converged(outcome.cluster).ok

    if not fails(shifted):
        # The violation does not reproduce outside its long-run
        # context; report it unshrunk.
        return {
            "violation": first.as_dict(),
            "schedule": ",".join(shifted),
            "minimal": None,
            "shrink_probes": 1,
            "replay": None,
        }
    if len(shifted) <= 1:
        minimal, probes = shifted, 0
    else:
        minimal, probes = ddmin(shifted, fails, max_probes=max_probes)
    minimal_spec = compose(minimal)
    shards_arg = f" --shards {shards}" if shards > 1 else ""
    repl_arg = (
        f" --replication {replication}" if replication != "none" else ""
    )
    bug_arg = f" --seed-bug {seed_bug}" if seed_bug != "none" else ""
    return {
        "violation": first.as_dict(),
        "schedule": ",".join(shifted),
        "minimal": minimal_spec.serialize(),
        "minimal_clauses": len(minimal),
        "shrink_probes": probes + 1,
        "replay": (
            f"python -m repro run --workload soak --faults "
            f"'{minimal_spec.serialize()}' --check --seed {seed} "
            f"--clients {clients} --duration {span:.1f}"
            f"{shards_arg}{repl_arg}{bug_arg}"
        ),
    }
