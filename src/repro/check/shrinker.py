"""Delta-debugging (ddmin) over fault-clause atoms.

When the explorer finds a failing schedule it usually carries several
clauses that have nothing to do with the bug -- background loss, an
unrelated partition.  :func:`ddmin` reduces the clause list to a
1-minimal subset: removing any single remaining clause makes the
failure disappear.  The classic Zeller/Hildebrandt algorithm, with a
memo so the (expensive: each probe is a full simulated run) predicate
is never evaluated twice on the same subset.
"""

from __future__ import annotations

import typing as _t

__all__ = ["ddmin"]


def ddmin(
    clauses: _t.Sequence[str],
    fails: _t.Callable[[_t.List[str]], bool],
    max_probes: int = 64,
) -> _t.Tuple[_t.List[str], int]:
    """Minimise ``clauses`` while ``fails(subset)`` stays true.

    ``fails`` must be deterministic (the checker replays each candidate
    with a fixed seed).  Returns ``(minimal_clauses, probes_used)``.
    Stops early -- returning the best reduction so far -- if the probe
    budget runs out.
    """
    items = list(clauses)
    if not fails(items):
        raise ValueError("ddmin: initial schedule does not fail")
    memo: _t.Dict[_t.Tuple[str, ...], bool] = {tuple(items): True}
    probes = 0

    def probe(subset: _t.List[str]) -> bool:
        nonlocal probes
        key = tuple(subset)
        if key not in memo:
            probes += 1
            memo[key] = fails(subset)
        return memo[key]

    granularity = 2
    while len(items) >= 2 and probes < max_probes:
        chunk = max(1, len(items) // granularity)
        subsets = [
            items[i:i + chunk] for i in range(0, len(items), chunk)
        ]
        reduced = False
        # Try each subset alone, then each complement.
        for subset in subsets:
            if probes >= max_probes:
                break
            if len(subset) < len(items) and probe(subset):
                items = subset
                granularity = 2
                reduced = True
                break
        if not reduced:
            for i in range(len(subsets)):
                if probes >= max_probes:
                    break
                complement = [
                    c
                    for j, s in enumerate(subsets)
                    if j != i
                    for c in s
                ]
                if complement and len(complement) < len(items) and probe(
                    complement
                ):
                    items = complement
                    granularity = max(granularity - 1, 2)
                    reduced = True
                    break
        if not reduced:
            if granularity >= len(items):
                break
            granularity = min(len(items), granularity * 2)
    return items, probes
