"""The checker's workload: small, hot, and protocol-complete.

Benchmark personalities (xcdn, varmail) are tuned for the paper's
figures; the checker instead wants a workload that exercises *every*
transition point quickly -- rewrites of the same pages (dedup merges in
the commit queue), appends (fresh allocations and delegation grants),
fsyncs (expedited writeback and sync commits), and create/unlink churn
(namespace ops beyond commits) -- all within a few hundred simulated
milliseconds so thousands of schedules stay cheap.
"""

from __future__ import annotations

import typing as _t

from repro.workloads.spec import Workload, WorkloadContext

__all__ = ["CheckWorkload"]

KIB = 1024


class CheckWorkload(Workload):
    """Create/rewrite/append/fsync/unlink mix over a tiny file set."""

    name = "check"
    threads_per_client = 2
    think_time = 0.0002

    files_per_client = 2
    io_size = 16 * KIB
    #: Appends wrap back to offset 0 past this point, turning into
    #: rewrites of committed ranges (the in-place commit path).
    wrap_size = 256 * KIB

    def setup(self, ctx: WorkloadContext) -> _t.Generator:
        files: _t.List[_t.Dict[str, int]] = []
        for _ in range(self.files_per_client):
            name = ctx.unique_name("chk")
            file_id = yield from ctx.fs.create(name)
            yield from ctx.fs.write(file_id, 0, self.io_size)
            files.append({"id": file_id, "cursor": self.io_size})
        ctx.state["files"] = files
        ctx.state["scratch"] = []

    def op(self, ctx: WorkloadContext, thread_id: int) -> _t.Generator:
        files = ctx.state["files"]
        entry = files[
            (thread_id + ctx.state.setdefault("rr", 0)) % len(files)
        ]
        ctx.state["rr"] += 1
        roll = ctx.rng.random()
        if roll < 0.45:
            # Append at the cursor (wrapping): allocation + commit.
            offset = entry["cursor"] % self.wrap_size
            yield from ctx.fs.write(entry["id"], offset, self.io_size)
            entry["cursor"] = offset + self.io_size
        elif roll < 0.75:
            # Rewrite a committed range: dedup merge / in-place commit.
            limit = max(entry["cursor"] - self.io_size, 0)
            offset = (
                int(ctx.rng.random() * (limit // self.io_size + 1))
                * self.io_size
            )
            yield from ctx.fs.write(entry["id"], offset, self.io_size)
        elif roll < 0.85:
            yield from ctx.fs.fsync(entry["id"])
        elif roll < 0.95 or not ctx.state["scratch"]:
            # Create a scratch file and give it one write.
            name = ctx.unique_name("scratch")
            file_id = yield from ctx.fs.create(name)
            yield from ctx.fs.write(file_id, 0, self.io_size)
            ctx.state["scratch"].append(file_id)
        else:
            file_id = ctx.state["scratch"].pop(0)
            yield from ctx.fs.unlink(file_id)
