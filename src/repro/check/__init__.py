"""repro.check: crash-schedule exploration with invariant checking.

The deterministic simulator makes crash testing *enumerable*: instead of
pulling power at random on real machines, the explorer schedules a crash
just after every observed protocol state transition, layers seeded
random nemesis fault combinations on top, judges every surviving state
against the full invariant suite, and shrinks failures to minimal
replayable fault specs.  ``python -m repro check`` is the front end.
"""

from repro.check.explorer import (
    CheckReport,
    Counterexample,
    RunOutcome,
    explore,
    run_schedule,
)
from repro.check.oracle import Verdict, judge_crash, judge_live
from repro.check.schedule import compose, describe, schedule_events
from repro.check.shrinker import ddmin
from repro.check.transitions import (
    COUNTER_METRICS,
    TransitionCoverage,
    transition_times,
)
from repro.check.workload import CheckWorkload

__all__ = [
    "CheckReport",
    "CheckWorkload",
    "Counterexample",
    "COUNTER_METRICS",
    "RunOutcome",
    "TransitionCoverage",
    "Verdict",
    "compose",
    "ddmin",
    "describe",
    "explore",
    "judge_crash",
    "judge_live",
    "run_schedule",
    "schedule_events",
    "transition_times",
]
