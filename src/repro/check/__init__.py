"""repro.check: crash-schedule exploration with invariant checking.

The deterministic simulator makes crash testing *enumerable*: instead of
pulling power at random on real machines, the explorer schedules a crash
just after every observed protocol state transition, layers seeded
random nemesis fault combinations on top, judges every surviving state
against the full invariant suite, and shrinks failures to minimal
replayable fault specs.  ``python -m repro check`` is the front end.

:mod:`repro.check.soak` extends the same oracles to long horizons:
``python -m repro soak`` runs a tracked nemesis over virtual hours and
judges safety *and* convergence (liveness) continuously mid-run.
"""

from repro.check.explorer import (
    CheckReport,
    Counterexample,
    RunOutcome,
    explore,
    run_schedule,
)
from repro.check.oracle import Verdict, judge_crash, judge_live
from repro.check.schedule import compose, describe, schedule_events
from repro.check.shrinker import ddmin
from repro.check.soak import (
    SoakReport,
    SoakViolation,
    SoakWorkload,
    judge_converged,
    run_soak,
    seed_bug_tweak,
)
from repro.check.transitions import (
    COUNTER_METRICS,
    TransitionCoverage,
    transition_times,
)
from repro.check.workload import CheckWorkload

__all__ = [
    "CheckReport",
    "CheckWorkload",
    "Counterexample",
    "COUNTER_METRICS",
    "RunOutcome",
    "SoakReport",
    "SoakViolation",
    "SoakWorkload",
    "TransitionCoverage",
    "Verdict",
    "compose",
    "ddmin",
    "describe",
    "explore",
    "judge_converged",
    "judge_crash",
    "judge_live",
    "run_schedule",
    "run_soak",
    "schedule_events",
    "seed_bug_tweak",
    "transition_times",
]
