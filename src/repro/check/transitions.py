"""Coverage accounting over the protocol's transition points.

The coverage universe is :data:`repro.obs.tracer.TRANSITION_POINTS`:
every named place the protocol state machine advances (writepage,
commit-queue enqueue, dedup merge, compound dispatch, commit RPC, MDS
apply, journal write, disk dispatch, delegation grant, lease
renew/reclaim).  A checking run *covers* a point when the instrumented
site fired at least once in at least one explored schedule; the check
report's coverage fraction is hits over universe size.

Span- and instant-kind points are counted from the tracer; counter-kind
points (no trace record, only a metric) are read from the registry via
:data:`COUNTER_METRICS`.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass, field

from repro.obs.tracer import TRANSITION_POINTS

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.obs import Instrumentation

__all__ = [
    "COUNTER_METRICS",
    "TransitionCoverage",
    "transition_times",
]

#: Registry metric backing each counter-kind transition point.
COUNTER_METRICS: _t.Dict[str, str] = {
    "lease_renew": "mds.lease_renewals",
}


@dataclass
class TransitionCoverage:
    """Hit counts per transition point, merged across schedules."""

    hits: _t.Dict[str, int] = field(
        default_factory=lambda: {name: 0 for name, _ in TRANSITION_POINTS}
    )

    def observe(self, obs: "Instrumentation") -> None:
        """Fold one finished run's trace/metrics into the tally."""
        tracer = obs.tracer
        for name, kind in TRANSITION_POINTS:
            if kind == "span":
                count = len(tracer.spans_named(name))
            elif kind == "instant":
                count = len(tracer.events_named(name))
            else:
                metric = COUNTER_METRICS[name]
                count = int(obs.registry.counter(metric).value)
            self.hits[name] += count

    @property
    def covered(self) -> _t.List[str]:
        return [name for name, _ in TRANSITION_POINTS if self.hits[name]]

    @property
    def missed(self) -> _t.List[str]:
        return [
            name for name, _ in TRANSITION_POINTS if not self.hits[name]
        ]

    @property
    def fraction(self) -> float:
        return len(self.covered) / len(TRANSITION_POINTS)

    def report(self) -> _t.Dict[str, _t.Any]:
        return {
            "universe": [name for name, _ in TRANSITION_POINTS],
            "hits": dict(sorted(self.hits.items())),
            "covered": self.covered,
            "missed": self.missed,
            "fraction": round(self.fraction, 4),
        }


def transition_times(
    obs: "Instrumentation", samples_per_point: int = 3
) -> _t.List[_t.Tuple[str, float]]:
    """Crash-candidate timestamps from a probe run, per transition.

    For each span/instant transition point that fired, pick up to
    ``samples_per_point`` representative timestamps (first, middle,
    last occurrence).  Counter-kind points carry no timestamps and are
    not crash-targetable -- their coverage comes from the runs
    themselves.  Returned sorted by time for a deterministic schedule
    order.
    """
    out: _t.List[_t.Tuple[str, float]] = []
    tracer = obs.tracer
    for name, kind in TRANSITION_POINTS:
        if kind == "span":
            times = sorted(s.start for s in tracer.spans_named(name))
        elif kind == "instant":
            times = sorted(e.time for e in tracer.events_named(name))
        else:
            continue
        if not times:
            continue
        picks: _t.List[float] = [times[0]]
        if len(times) > 2 and samples_per_point > 2:
            picks.append(times[len(times) // 2])
        if len(times) > 1 and samples_per_point > 1:
            picks.append(times[-1])
        seen: _t.Set[float] = set()
        for t in picks[:samples_per_point]:
            if t not in seen:
                seen.add(t)
                out.append((name, t))
    out.sort(key=lambda pair: (pair[1], pair[0]))
    return out
