"""Schedules as lists of fault-clause atoms.

A *schedule* is one fault scenario the checker runs: network loss, delay,
partition windows, MDS restarts, client deaths, and at most one
whole-cluster crash cut.  Rather than inventing a new representation,
the checker reuses :class:`repro.faults.spec.FaultSpec` and treats its
serialized clause strings as the atoms -- so every schedule, including a
shrunken counterexample, is directly replayable with ``repro run
--faults '<spec>'``.
"""

from __future__ import annotations

import typing as _t

from repro.faults.spec import FaultSpec

__all__ = ["schedule_events", "compose", "describe"]


def schedule_events(spec: FaultSpec) -> _t.List[str]:
    """Decompose a spec into its independent clause atoms."""
    return [c for c in spec.serialize().split(",") if c]


def compose(clauses: _t.Iterable[str]) -> FaultSpec:
    """Reassemble clause atoms into a runnable spec."""
    return FaultSpec.parse(",".join(clauses))


def describe(spec: FaultSpec) -> str:
    """Human-oriented one-liner for a schedule ('' for fault-free)."""
    text = spec.serialize()
    return text if text else "(fault-free)"
