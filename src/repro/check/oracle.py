"""The checker's oracle: every invariant the system promises, in one verdict.

After a schedule runs (to a crash cut, or to a quiescent end), the
oracle judges the surviving state against the full invariant suite:

1. **Ordered writes + orphan GC** (crash path): recovery's pre/post
   checks -- no dangling metadata, no extent overlap, space accounting
   balances after orphan reclamation (:mod:`repro.consistency.recovery`).
2. **fsck**: allocator books cross-checked against the committed
   namespace (:mod:`repro.consistency.fsck`).
3. **Exactly-once commits**: the MDS's audit of applied ``(client,
   op)`` pairs never exceeds one -- a retransmitted commit that slips
   past the dedup table is a double apply even when the namespace
   happens to mask it.
4. **History**: the durable oplog replayed into a shadow namespace must
   reproduce the live namespace exactly
   (:func:`repro.consistency.history.check_history`).
5. **Trace ordering**: for every committed update, its writepages
   finished before the commit RPC left the client
   (:func:`repro.consistency.history.check_commit_ordering`).
6. **Cross-shard disjointness** (sharded deployments): every shard's
   volume slice, committed extents, and namespace partition stay inside
   its own slice and no volume byte is claimed by two shards
   (:func:`repro.mds.sharding.check_shard_disjointness`).

Checks 1-5 run per metadata shard; with one shard the verdict is
exactly the single-MDS oracle's.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass, field

from repro.consistency.crash import CrashState
from repro.consistency.fsck import fsck
from repro.consistency.history import check_commit_ordering, check_history
from repro.consistency.invariant import check_ordered_writes
from repro.consistency.recovery import recover
from repro.mds.sharding import check_shard_disjointness

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.fs.redbud import RedbudCluster

__all__ = ["Verdict", "judge_crash", "judge_live"]


@dataclass
class Verdict:
    """One schedule's outcome across all invariant checks."""

    #: ``(kind, detail)`` pairs; empty means the schedule passed.
    violations: _t.List[_t.Tuple[str, str]] = field(default_factory=list)
    summaries: _t.List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def add(self, kind: str, detail: str) -> None:
        self.violations.append((kind, detail))

    def kinds(self) -> _t.List[str]:
        return sorted({kind for kind, _ in self.violations})

    def as_dict(self) -> _t.Dict[str, _t.Any]:
        return {
            "ok": self.ok,
            "violations": [
                {"kind": kind, "detail": detail}
                for kind, detail in self.violations
            ],
            "summaries": list(self.summaries),
        }


def _common_checks(cluster: "RedbudCluster", verdict: Verdict) -> None:
    """Checks shared by the crash and live paths (run per shard)."""
    sharded = cluster.metadata.num_shards > 1
    worst = 0
    for shard, mds in enumerate(cluster.metadata):
        tag = f" [shard {shard}]" if sharded else ""
        shard_worst = max(mds.commit_apply_counts.values(), default=0)
        worst = max(worst, shard_worst)
        if shard_worst > 1:
            doubled = sorted(
                key
                for key, count in mds.commit_apply_counts.items()
                if count > 1
            )
            for client_id, op_id in doubled:
                verdict.add(
                    "double-apply",
                    f"commit (client={client_id}, op={op_id}) applied "
                    f"{mds.commit_apply_counts[(client_id, op_id)]} "
                    f"times{tag}",
                )
    verdict.summaries.append(
        f"exactly-once: max applies per commit = {worst}"
    )

    for shard, mds in enumerate(cluster.metadata):
        tag = f" [shard {shard}]" if sharded else ""
        history = check_history(mds.oplog, mds.namespace)
        for detail in history.violations:
            verdict.add("history-divergence", detail + tag)
        verdict.summaries.append(history.summary() + tag)

    if cluster.obs is not None:
        for detail in check_commit_ordering(cluster.obs.tracer):
            verdict.add("commit-before-stable", detail)


def judge_crash(
    cluster: "RedbudCluster", state: CrashState
) -> Verdict:
    """Judge a crashed cluster: recovery, fsck, then the common suite."""
    verdict = Verdict()
    # CURP witness replay runs *before* recovery: a fast-path commit
    # acknowledged off the witnesses but not yet synced to the MDS is
    # re-applied from the witnesses' durable entries (deduplicated
    # against the MDS result table), exactly like a real recovery
    # master would.  Recovery's orphan reclamation then sees the op's
    # extents as committed rather than reclaiming them.
    if state.witnessed_ops:
        replayed = suppressed = 0
        for client_id, op_id, file_id, extents in state.witnessed_ops:
            shard = cluster.router.shard_of_file(file_id)
            if cluster.metadata.shard(shard).replay_witnessed(
                client_id, op_id, file_id, extents
            ):
                replayed += 1
            else:
                suppressed += 1
        witnesses = getattr(cluster, "witnesses", None)
        if witnesses is not None:
            witnesses.replayed_ops += replayed
        verdict.summaries.append(
            f"witness replay: {replayed} applied, "
            f"{suppressed} deduplicated"
        )
    report = recover(state)
    for violation in report.pre_check.violations:
        verdict.add(violation.kind, violation.detail)
    for violation in report.post_check.violations:
        if violation not in report.pre_check.violations:
            verdict.add(violation.kind, violation.detail)
    verdict.summaries.append("pre-GC " + report.pre_check.summary())
    verdict.summaries.append(
        f"recovery reclaimed {report.orphan_bytes_reclaimed} orphan bytes"
    )

    sharded = len(state.shards) > 1
    for shard, (namespace, space) in enumerate(state.shards):
        tag = f" [shard {shard}]" if sharded else ""
        fsck_report = fsck(namespace, space)
        if not fsck_report.clean:
            verdict.add("fsck", fsck_report.summary() + tag)
        verdict.summaries.append(fsck_report.summary() + tag)

    _shard_disjointness(cluster, state.shards, verdict)
    _replica_divergence(cluster, state.shards, verdict, repair=True)
    _common_checks(cluster, verdict)
    return verdict


def judge_live(cluster: "RedbudCluster") -> Verdict:
    """Judge a quiescent (settled, un-crashed) cluster."""
    verdict = Verdict()
    shards = tuple(
        (server.namespace, server.space) for server in cluster.metadata
    )
    sharded = len(shards) > 1
    for shard, (namespace, space) in enumerate(shards):
        tag = f" [shard {shard}]" if sharded else ""
        report = check_ordered_writes(
            namespace, cluster.array.stable, space
        )
        for violation in report.violations:
            verdict.add(violation.kind, violation.detail + tag)
        verdict.summaries.append("live " + report.summary() + tag)

        fsck_report = fsck(namespace, space)
        if fsck_report.lost_claimed:
            # A live cluster legitimately has uncommitted (delegated)
            # space, but free space overlapping committed extents is
            # corruption in any state.
            verdict.add("fsck", fsck_report.summary() + tag)
        verdict.summaries.append(fsck_report.summary() + tag)

    _shard_disjointness(cluster, shards, verdict)
    _replica_divergence(cluster, shards, verdict, repair=False)
    _common_checks(cluster, verdict)
    return verdict


def _replica_divergence(
    cluster: "RedbudCluster",
    shards: _t.Sequence[_t.Any],
    verdict: Verdict,
    repair: bool,
) -> None:
    """Replica-divergence invariant for replicated storage groups.

    After recovery (``repair=True``: surviving members first re-silver
    up to the recoverable set) every pair of live members must hold the
    same durable ranges, and every committed extent must be recoverable
    -- held by at least a data quorum of live members.  Vacuous for
    unreplicated clusters.
    """
    group = getattr(cluster, "group", None)
    if group is None:
        return
    if repair:
        copied = group.repair()
        if copied:
            verdict.summaries.append(
                f"repair re-silvered {copied} bytes"
            )
    recoverable = group.recoverable_set()
    missing = 0
    sharded = len(shards) > 1
    for shard, (namespace, _space) in enumerate(shards):
        tag = f" [shard {shard}]" if sharded else ""
        for offset, length in namespace.all_committed_ranges():
            if not recoverable.contains(offset, offset + length):
                missing += 1
                verdict.add(
                    "replica-divergence",
                    f"committed extent [{offset}, {offset + length}) "
                    f"held by fewer than {group.arrangement.data} live "
                    f"members{tag}",
                )
    for a, b in group.divergent_members():
        verdict.add(
            "replica-divergence",
            f"live members {a} and {b} disagree on durable ranges",
        )
    verdict.summaries.append(
        f"replica-divergence: {group.alive_count}/{group.size} members "
        f"alive, {missing} unrecoverable committed extents"
    )


def _shard_disjointness(
    cluster: "RedbudCluster",
    shards: _t.Sequence[_t.Any],
    verdict: Verdict,
) -> None:
    """Cross-shard invariant: shards never claim each other's bytes."""
    if len(shards) <= 1:
        return  # Vacuous for a single MDS; keep its verdict unchanged.
    problems = check_shard_disjointness(
        shards, cluster.config.disk.volume_size
    )
    for detail in problems:
        verdict.add("shard-disjointness", detail)
    verdict.summaries.append(
        f"shard-disjointness: {len(shards)} shards, "
        f"{len(problems)} violations"
    )
