#!/usr/bin/env python
"""Scale-out metadata: the same workload on 1, 2 and 4 MDS shards.

Runs a metadata-heavy varmail workload on a delayed-commit Redbud
cluster while sweeping `config.mds.shards`, printing the per-shard
request/file/space breakdown the router produces, then demonstrates a
shard-targeted fault: restart shard 1 mid-run and watch only that
shard's clients stall while the other shards keep committing.

Run::

    python examples/sharded_mds.py
"""

from repro.check import run_schedule
from repro.faults import FaultSpec
from repro.fs import ClusterConfig, RedbudCluster
from repro.util import fmt_bytes
from repro.workloads import VarmailWorkload


def sweep(shards: int):
    config = ClusterConfig.delayed_commit(num_clients=3).with_shards(shards)
    cluster = RedbudCluster(config, seed=11)
    result = cluster.run_workload(
        VarmailWorkload(seed_files_per_client=15), duration=1.0, warmup=0.2
    )
    return cluster, result


def print_shard_table(cluster) -> None:
    rows = cluster.metadata.per_shard_stats()
    print(f"  {'shard':>5} {'requests':>9} {'ops':>7} {'files':>6} {'free':>10}")
    for row in rows:
        print(
            f"  {row['shard']:>5} {row['mds_requests']:>9} "
            f"{row['mds_ops']:>7} {row['files']:>6} "
            f"{fmt_bytes(row['free_bytes']):>10}"
        )
    total_req = sum(r["mds_requests"] for r in rows)
    ideal = total_req / len(rows)
    worst = max(r["mds_requests"] for r in rows)
    print(
        f"  aggregate: {total_req} requests, "
        f"{cluster.metadata.ops_processed} ops; worst shard at "
        f"{worst / ideal:.2f}x the ideal share"
    )


def main() -> None:
    print("=== shard sweep: varmail on 1 / 2 / 4 metadata shards ===")
    for shards in (1, 2, 4):
        cluster, result = sweep(shards)
        print(f"\nshards={shards}: {result.ops_per_second:,.0f} ops/s")
        print_shard_table(cluster)

    print("\n=== shard-targeted fault: restart shard 1 mid-run ===")
    out = run_schedule(
        FaultSpec.parse("mds_restart@0.1:0.05:shard=1"), seed=0, shards=2
    )
    for server in out.cluster.metadata:
        print(
            f"  shard {out.cluster.metadata.servers.index(server)}: "
            f"restarts={server.restarts} "
            f"requests_lost={server.requests_lost_in_crashes}"
        )
    verdict = "ok" if out.verdict.ok else "VIOLATIONS"
    print(f"  invariant panel after the fault: {verdict}")
    for summary in out.verdict.summaries:
        if summary.startswith("shard-disjointness"):
            print(f"  {summary}")


if __name__ == "__main__":
    main()
