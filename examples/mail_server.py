#!/usr/bin/env python
"""Mail-server scenario: varmail with fsync durability on Redbud.

Varmail is the adversarial case for delayed commit: every composed mail
is fsync'd, so the application *does* wait for the ordered write.  The
point the paper makes (and this example shows) is that delayed commit
still helps -- data writes from many threads merge, commits compound
into fewer RPCs -- while fsync keeps full durability: the example
crashes the cluster at the end and verifies that every fsync'd mail
survives consistently.

Run::

    python examples/mail_server.py
"""

from repro.analysis import Table
from repro.consistency import check_ordered_writes
from repro.fs import ClusterConfig, RedbudCluster
from repro.util import fmt_time
from repro.workloads import VarmailWorkload


def run(commit_mode: str, delegation: bool):
    config = ClusterConfig(
        num_clients=7, commit_mode=commit_mode, space_delegation=delegation
    )
    cluster = RedbudCluster(config, seed=13)
    result = cluster.run_workload(
        VarmailWorkload(seed_files_per_client=25), duration=3.0
    )
    return cluster, result


def main() -> None:
    table = Table(
        ["configuration", "flowlets/s", "fsync latency", "commit RPCs",
         "mean compound degree"],
        title="varmail (fsync-per-mail), 7 clients x 4 threads",
    )
    rows = [
        ("original Redbud", "synchronous", False),
        ("delayed + delegation", "delayed", True),
    ]
    last_cluster = None
    for name, mode, delegation in rows:
        cluster, result = run(mode, delegation)
        last_cluster = cluster
        fsync = result.latency("fsync")
        table.add_row(
            name,
            result.metrics.count("create") / result.duration,
            fmt_time(fsync.mean) if fsync.count else "inline",
            result.extras.get("commit_rpcs", "per-op"),
            f"{result.extras.get('mean_compound_degree', 1.0):.2f}",
        )
    table.print()

    # Durability check: crash the delayed-commit cluster right now and
    # verify the ordered-writes invariant holds.
    for client in last_cluster.clients:
        client.crash()
    report = check_ordered_writes(
        last_cluster.namespace,
        last_cluster.array.stable,
        last_cluster.space,
    )
    print(f"\nPost-crash check: {report.summary()}")
    assert report.consistent


if __name__ == "__main__":
    main()
