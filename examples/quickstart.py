#!/usr/bin/env python
"""Quickstart: build a Redbud cluster and feel the Delayed Commit Protocol.

Creates the same small cluster twice -- once with the original
synchronous ordered writes, once with delayed commit + space delegation
-- runs an identical burst of small-file updates on each, and prints the
per-update latency and the background I/O behaviour.

Run::

    python examples/quickstart.py
"""

from repro.analysis import Table
from repro.fs import ClusterConfig, RedbudCluster
from repro.util import fmt_time


def run(commit_mode: str, delegation: bool) -> dict:
    config = ClusterConfig(
        num_clients=2,
        commit_mode=commit_mode,
        space_delegation=delegation,
    )
    cluster = RedbudCluster(config, seed=7)
    env = cluster.env
    fs = cluster.clients[0]
    latencies = []

    def app():
        # Write sixty 32 KB files, timing each update call.
        for i in range(60):
            fid = yield from fs.create(f"demo/file-{i}")
            start = env.now
            yield from fs.write(fid, 0, 32 * 1024)
            latencies.append(env.now - start)
        # Make everything durable before reading the clock.
        yield from fs.shutdown()

    env.process(app())
    env.run(until=30.0)

    stats = fs.blockdev.scheduler.stats
    return {
        "mode": f"{commit_mode}{' + delegation' if delegation else ''}",
        "mean_update": sum(latencies) / len(latencies),
        "makespan": env.now if not latencies else max(latencies) and env.now,
        "disk_ops": stats.dispatched,
        "merge_ratio": stats.merge_ratio,
        "commits_rpcs": (
            fs.daemon_ctx.stats.rpcs_sent
            if fs.daemon_ctx is not None
            else fs.protocol.commits_sent
        ),
    }


def main() -> None:
    sync = run("synchronous", False)
    delayed = run("delayed", True)

    table = Table(
        ["configuration", "mean update latency", "disk ops", "merge ratio",
         "commit RPCs"],
        title="60 x 32KB small-file updates, one client (plus one neighbour)",
    )
    for r in (sync, delayed):
        table.add_row(
            r["mode"],
            fmt_time(r["mean_update"]),
            r["disk_ops"],
            r["merge_ratio"],
            r["commits_rpcs"],
        )
    table.print()

    speedup = sync["mean_update"] / delayed["mean_update"]
    print(
        f"\nDelayed commit returned from each update {speedup:.0f}x faster: "
        "the ordered write (data before metadata) still happened, but in "
        "the background, where the queued requests merged "
        f"({delayed['merge_ratio']:.1f} submissions per disk op -- "
        f"{delayed['disk_ops']} disk ops instead of {sync['disk_ops']}). "
        "Under heavier load the commit daemons also compound several "
        "commits per RPC (see examples/cdn_server.py)."
    )


if __name__ == "__main__":
    main()
