#!/usr/bin/env python
"""End-to-end SLO report for a sharded, faulted delayed-commit run.

Runs xcdn on a 2-shard Redbud cluster with a mid-run MDS restart, then
produces everything the tail-latency layer offers:

- per-op latency tails (p50/p99/p999) from the log-bucketed histograms,
- per-shard MDS service-time tails,
- the critical-path stage breakdown (where the slowest decile of
  updates spends its time vs the median cohort),
- SLO verdicts with the restart's downtime window fault-excused,
- the windowed telemetry timeline,
- ``slo_report_trace.json``: a Perfetto-loadable trace whose counter
  tracks (throughput, latency quantiles, queue depth, merge ratio,
  fault-active, per-stage time) ride alongside the causal spans --
  open it at https://ui.perfetto.dev.

Run::

    python examples/slo_report.py
"""

from repro.faults import FaultInjector, FaultSpec
from repro.fs import ClusterConfig, RedbudCluster
from repro.net.rpc import RetryPolicy
from repro.obs import (
    Instrumentation,
    SloSpec,
    Timeline,
    critical_path_table,
    decompose_updates,
    slo_table,
    timeline_counter_events,
    write_chrome_trace,
)
from repro.util import fmt_time
from repro.workloads import XcdnWorkload

TRACE_PATH = "slo_report_trace.json"
SLO = "write:p99<=0.05,create:p99<=0.05,*:p999<=0.5"


def main() -> None:
    obs = Instrumentation()
    config = (
        ClusterConfig.delayed_commit(num_clients=3, retry=RetryPolicy())
        .with_shards(2)
    )
    cluster = RedbudCluster(config, seed=11, obs=obs)
    injector = FaultInjector(
        cluster, FaultSpec.parse("mds_restart@0.6:0.2:shard=1")
    )

    print("=== xcdn on 2 metadata shards, shard 1 restarts at t=0.6 ===")
    result = cluster.run_workload(
        XcdnWorkload(file_size=32 * 1024, seed_files_per_client=15),
        duration=2.0,
    )
    injector.stop()
    cluster.settle()

    print(f"\n{result.ops_per_second:,.0f} ops/s; op latency tails:")
    for op in result.metrics.op_types():
        stats = result.latency(op)
        print(
            f"  {op:>8}: n={stats.count:<6} p50={fmt_time(stats.p50):>8} "
            f"p99={fmt_time(stats.p99):>8} p999={fmt_time(stats.p999):>8}"
        )

    print("\nper-shard MDS service-time tails:")
    for row in cluster.metadata.per_shard_stats():
        print(
            f"  shard {row['shard']}: p50={fmt_time(row['svc_p50']):>8} "
            f"p99={fmt_time(row['svc_p99']):>8} "
            f"p999={fmt_time(row['svc_p999']):>8} "
            f"(restarts={row['mds_restarts']})"
        )

    breakdowns = decompose_updates(obs.tracer)
    print(f"\n{len(breakdowns)} updates completed their causal chain")
    print(critical_path_table(breakdowns).render())

    timeline = Timeline.build(result.metrics, obs.tracer, breakdowns)
    spec = SloSpec.parse(SLO)
    verdicts = spec.evaluate(result.metrics, timeline.fault_window_indexes)
    print(
        slo_table(
            verdicts,
            excused_windows=len(timeline.fault_window_indexes),
        ).render()
    )
    print(timeline.table().render())

    count = write_chrome_trace(
        obs.tracer,
        TRACE_PATH,
        extra_events=timeline_counter_events(timeline),
    )
    print(
        f"\nwrote {count} events to {TRACE_PATH} -- load it in Perfetto "
        "and look for the 'slo-timeline' counter tracks"
    )
    if any(not v.passed for v in verdicts):
        raise SystemExit("SLO violated")


if __name__ == "__main__":
    main()
