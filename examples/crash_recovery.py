#!/usr/bin/env python
"""Crash and recover: ordered writes keep the file system consistent.

Drives a busy delayed-commit cluster, pulls the plug mid-flight at an
arbitrary instant, checks the ordered-writes invariant, and runs orphan
garbage collection -- §I and §III of the paper end to end.  Then repeats
the experiment with the deliberately broken *unordered* control mode to
show the invariant checker catching dangling metadata.

Run::

    python examples/crash_recovery.py
"""

from repro.analysis.metrics import OpMetrics
from repro.consistency import check_ordered_writes, crash_cluster, recover
from repro.fs import ClusterConfig, RedbudCluster
from repro.util import fmt_bytes
from repro.workloads import XcdnWorkload
from repro.workloads.spec import WorkloadContext


def launch(commit_mode: str):
    config = ClusterConfig(
        num_clients=3,
        commit_mode=commit_mode,
        space_delegation=(commit_mode != "synchronous"),
    )
    cluster = RedbudCluster(config, seed=31)
    env = cluster.env
    workload = XcdnWorkload(file_size=32 * 1024, seed_files_per_client=10)
    shared: dict = {}
    contexts = [
        WorkloadContext(
            env=env,
            fs=cluster.clients[i],
            rng=cluster.root_rng.stream("wl", i),
            client_index=i,
            num_clients=config.num_clients,
            metrics=OpMetrics(),
            shared=shared,
        )
        for i in range(config.num_clients)
    ]
    setups = [env.process(workload.setup(ctx)) for ctx in contexts]
    env.run(until=env.all_of(setups))

    def forever(ctx, tid):
        while True:
            yield from workload.op(ctx, tid)

    for ctx in contexts:
        for tid in range(workload.threads_per_client):
            env.process(forever(ctx, tid))
    return cluster


def main() -> None:
    print("=== delayed commit (ordered writes kept by the file system) ===")
    cluster = launch("delayed")
    state = crash_cluster(cluster, at_time=cluster.env.now + 0.37)
    print(
        f"power loss at t={state.crash_time:.3f}s: lost "
        f"{state.lost_commit_records} queued commit records and "
        f"{state.lost_block_requests} in-flight block writes"
    )
    report = recover(state)
    print(f"pre-GC : {report.pre_check.summary()}")
    print(
        f"orphans: {fmt_bytes(report.orphan_bytes_reclaimed)} reclaimed by GC"
    )
    print(f"post-GC: {report.post_check.summary()}")
    assert report.recovered_consistent

    print("\n=== unordered control mode (the bug ordered writes prevent) ===")
    for attempt in range(8):
        cluster = launch("unordered")
        state = crash_cluster(cluster, at_time=cluster.env.now + 0.05 * (attempt + 1))
        report = check_ordered_writes(
            state.namespace, state.stable, state.space
        )
        if not report.consistent:
            print(f"crash at t={state.crash_time:.3f}s: {report.summary()}")
            worst = report.violations[0]
            print(f"example violation: {worst.detail}")
            break
    else:
        print("(no violation surfaced in these attempts -- rerun)")


if __name__ == "__main__":
    main()
