#!/usr/bin/env python
"""Watch the adaptive machinery react to a bursty workload (Fig. 6 live).

Drives one client with alternating idle and flood phases and renders the
commit-thread count against the commit-queue length as an ASCII dual
plot -- the same two series the paper traces in Figure 6 -- plus the
compound-degree history.

Run::

    python examples/adaptive_commit_demo.py
"""

from repro.analysis import dual_series
from repro.fs import ClusterConfig, RedbudCluster


def main() -> None:
    config = ClusterConfig.space_delegation_config(num_clients=2)
    cluster = RedbudCluster(config, seed=3)
    env = cluster.env
    fs = cluster.clients[0]

    def bursty_app():
        counter = 0
        for phase in range(4):
            # Flood: a burst of small updates back-to-back.
            for _ in range(180):
                fid = yield from fs.create(f"burst/{counter}")
                counter += 1
                yield from fs.write(fid, 0, 16 * 1024)
            # Idle: let the daemons drain and the pool shrink.
            yield env.timeout(1.5)

    env.process(bursty_app())
    env.run(until=8.0)

    samples = fs.thread_pool.samples
    print(
        dual_series(
            [s[0] for s in samples],
            [s[1] for s in samples],
            [s[2] for s in samples],
            a_label="commit threads",
            b_label="commit queue length",
            title="Adaptive commit thread pool under a bursty client",
            width=76,
            height=12,
        )
    )
    print(
        f"\npool: {fs.thread_pool.spawns} spawns, "
        f"{fs.thread_pool.retires} retires; "
        f"commits: {fs.daemon_ctx.stats.ops_committed} ops in "
        f"{fs.daemon_ctx.stats.rpcs_sent} RPCs "
        f"(mean compound degree "
        f"{fs.daemon_ctx.stats.mean_degree:.2f})"
    )
    if fs.compound.history:
        steps = ", ".join(
            f"t={t:.2f}s->{d}" for t, d in fs.compound.history[:8]
        )
        print(f"adaptive compound degree steps: {steps}")
    else:
        print("adaptive compound degree never needed to leave 1 "
              "(uncongested network and MDS)")


if __name__ == "__main__":
    main()
