#!/usr/bin/env python
"""CDN edge-store scenario: the paper's headline xcdn experiment.

Runs the xcdn workload (small-object ingest + cold serves, the paper's
Content Delivery Network benchmark) on the full 7-client cluster in the
three Redbud configurations of Fig. 4, and reports throughput, I/O merge
ratio and seek behaviour -- the mechanics behind the paper's 2.6x
speedup claim.

Run::

    python examples/cdn_server.py [--file-size 32768] [--duration 4]
"""

import argparse

from repro.analysis import Table
from repro.fs import ClusterConfig, RedbudCluster
from repro.storage.blktrace import placement_analysis
from repro.util import fmt_bytes, fmt_rate
from repro.workloads import XcdnWorkload

CONFIGS = {
    "original Redbud": ClusterConfig.original_redbud,
    "delayed commit": ClusterConfig.delayed_commit,
    "delayed + delegation": ClusterConfig.space_delegation_config,
}


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--file-size", type=int, default=32 * 1024)
    parser.add_argument("--duration", type=float, default=4.0)
    parser.add_argument("--clients", type=int, default=7)
    args = parser.parse_args()

    table = Table(
        ["configuration", "ops/s", "throughput", "merge ratio",
         "mean write hop", "speedup"],
        title=(
            f"xcdn, {fmt_bytes(args.file_size)} objects, "
            f"{args.clients} clients, {args.duration:.0f}s virtual"
        ),
    )
    baseline = None
    for name, factory in CONFIGS.items():
        cluster = RedbudCluster(factory(num_clients=args.clients), seed=21)
        workload = XcdnWorkload(
            file_size=args.file_size, seed_files_per_client=30
        )
        result = cluster.run_workload(workload, duration=args.duration)
        if baseline is None:
            baseline = result
        placement = placement_analysis(
            cluster.blktrace,
            op="write",
            since=result.metrics.start_time or 0.0,
        )
        table.add_row(
            name,
            result.ops_per_second,
            fmt_rate(result.bytes_per_second),
            result.extras["merge_ratio"],
            fmt_bytes(placement.mean_seek_distance),
            result.speedup_over(baseline),
        )
    table.print()


if __name__ == "__main__":
    main()
