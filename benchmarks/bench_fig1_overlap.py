"""Figure 1: parallelism of computing and I/O under delayed commit.

The paper's Fig. 1 contrasts the synchronous-commit timeline (compute,
write, *barrier*, compute, ...) with the delayed-commit timeline where
computing proceeds while the file system performs merged I/O in the
background.

Reproduction: one client alternates fixed compute phases with small-file
updates.  Under synchronous commit the makespan approaches
``n * (compute + io + rpc)``; under delayed commit it approaches
``n * compute`` plus a drained tail, and the I/O merges (queued
requests coalesce while the application computes).
"""

import pytest

from benchmarks.common import run_once
from repro.analysis import Table
from repro.fs import ClusterConfig, RedbudCluster

COMPUTE = 0.002
FILE_SIZE = 32 * 1024
N_OPS = 120


def makespan(commit_mode: str, delegation: bool) -> dict:
    config = ClusterConfig(
        num_clients=1,
        commit_mode=commit_mode,
        space_delegation=delegation,
    )
    cluster = RedbudCluster(config, seed=42)
    env = cluster.env
    fs = cluster.clients[0]
    done = {}

    def app():
        for i in range(N_OPS):
            yield env.timeout(COMPUTE)  # the application's own computing
            fid = yield from fs.create(f"f{i}")
            yield from fs.write(fid, 0, FILE_SIZE)
        # Drain: everything durable before we stop the clock.
        for i in range(N_OPS):
            pass
        yield from fs.shutdown()
        done["t"] = env.now

    env.process(app())
    env.run(until=60.0)
    merge = cluster.clients[0].blockdev.scheduler.stats
    return {
        "makespan": done["t"],
        "merge_ratio": merge.merge_ratio,
        "dispatched": merge.dispatched,
    }


@pytest.fixture(scope="module")
def results():
    return {}


def test_fig1_synchronous_commit(benchmark, results):
    results["sync"] = run_once(benchmark, lambda: makespan("synchronous", False))
    assert results["sync"]["makespan"] > N_OPS * COMPUTE


def test_fig1_delayed_commit(benchmark, results):
    results["delayed"] = run_once(
        benchmark, lambda: makespan("delayed", True)
    )


def test_fig1_overlap_report(benchmark, results):
    run_once(benchmark, lambda: None)  # keep this report under --benchmark-only
    sync, delayed = results["sync"], results["delayed"]
    table = Table(
        ["timeline", "makespan (s)", "merge ratio", "disk ops"],
        title=(
            "Fig. 1 -- computing/I-O overlap "
            f"({N_OPS} x [{COMPUTE * 1000:.0f}ms compute + 32KB update])"
        ),
    )
    table.add_row(
        "(a) synchronous commit",
        sync["makespan"],
        sync["merge_ratio"],
        sync["dispatched"],
    )
    table.add_row(
        "(b) delayed commit",
        delayed["makespan"],
        delayed["merge_ratio"],
        delayed["dispatched"],
    )
    table.print()

    # Shape claims: delayed overlaps I/O with computing...
    assert delayed["makespan"] < sync["makespan"]
    # ...and merges queued requests while the app computes (Fig. 1b).
    assert delayed["merge_ratio"] > sync["merge_ratio"]
    assert delayed["dispatched"] < sync["dispatched"]
