"""Figure 5: disk-seek traces under the three Redbud configurations.

The paper plots dispatched block addresses over time for 32 KB and 1 MB
xcdn runs: panels (a,b) show dense seek waves for original Redbud and
delayed commit, panel (c) "exposes few seek operations except some long
disk seeks shown as spikes" under space delegation; (d,e,f) repeat the
pattern at 1 MB with "less dense waves".

Reproduction: collect the blktrace of each run, export it alongside the
bench (``fig5_<config>_<size>.csv``), and assert on the quantities the
panels convey: write-seek fraction and sequential-run length.
"""

import os

import pytest

from benchmarks.common import ResultBoard, run_once
from repro.analysis import Table, scatter
from repro.analysis.traceio import dump_trace
from repro.fs import ClusterConfig, RedbudCluster
from repro.storage.blktrace import BlkTrace, SeekAnalysis, placement_analysis
from repro.workloads import XcdnWorkload

CONFIGS = {
    "original": ClusterConfig.original_redbud,
    "delayed": ClusterConfig.delayed_commit,
    "delegation": ClusterConfig.space_delegation_config,
}
FILE_SIZES = [32 * 1024, 1024 * 1024]
DURATION = 2.0
OUT_DIR = os.path.join(os.path.dirname(__file__), "out")

_board = ResultBoard()


@pytest.fixture(scope="module")
def board():
    return _board


def size_label(size):
    return f"{size // 1024}KB"


def write_analysis(trace: BlkTrace, since: float) -> SeekAnalysis:
    """Write-placement analysis from the measurement window only.

    Per-client distances between consecutive write dispatches -- the
    sequentiality the Fig. 5 panels convey -- excluding the setup-phase
    scattered seed writes.
    """
    return placement_analysis(trace, op="write", since=since)


@pytest.mark.parametrize("file_size", FILE_SIZES, ids=size_label)
@pytest.mark.parametrize("config_name", list(CONFIGS))
def test_fig5_cell(benchmark, board, config_name, file_size):
    def run():
        cluster = RedbudCluster(
            CONFIGS[config_name](num_clients=7), seed=23
        )
        workload = XcdnWorkload(
            file_size=file_size,
            seed_files_per_client=max(6, (256 * 1024) // file_size),
            threads_per_client=8,
        )
        result = cluster.run_workload(workload, duration=DURATION, warmup=0.3)
        return cluster.blktrace, result.metrics.start_time or 0.0

    trace, measure_start = run_once(benchmark, run)
    assert len(trace) > 0
    os.makedirs(OUT_DIR, exist_ok=True)
    path = os.path.join(
        OUT_DIR, f"fig5_{config_name}_{size_label(file_size)}.csv"
    )
    dump_trace(trace, path)
    if file_size == 32 * 1024:
        # Render the panel itself: dispatched write addresses over time.
        writes = [
            r
            for r in trace.records
            if r.op == "write" and r.time >= measure_start
        ]
        print()
        print(
            scatter(
                [r.time for r in writes],
                [r.start for r in writes],
                title=(
                    f"Fig. 5 panel -- {config_name}, 32KB "
                    "(write dispatch address vs time)"
                ),
                x_label="time (s)",
                y_label="volume address",
                width=68,
                height=12,
            )
        )
    board.put(
        size_label(file_size),
        config_name,
        write_analysis(trace, measure_start),
    )


def test_fig5_report_and_shape(benchmark, board):
    run_once(benchmark, lambda: None)  # keep this report under --benchmark-only
    table = Table(
        ["panel", "config", "size", "dispatches", "seek fraction",
         "mean run len", "mean seek (MB)", "max seek (MB)"],
        title="Fig. 5 -- write-stream seek behaviour (traces in benchmarks/out/)",
    )
    panels = [
        ("a", "original", "32KB"),
        ("b", "delayed", "32KB"),
        ("c", "delegation", "32KB"),
        ("d", "original", "1024KB"),
        ("e", "delayed", "1024KB"),
        ("f", "delegation", "1024KB"),
    ]
    for panel, config, size in panels:
        a: SeekAnalysis = board.get(size, config)
        table.add_row(
            panel,
            config,
            size,
            a.dispatches,
            a.seek_fraction,
            a.mean_run_length,
            a.mean_seek_distance / 1e6,
            a.max_seek_distance / 1e6,
        )
    table.print()

    for size in ("32KB", "1024KB"):
        original = board.get(size, "original")
        delayed = board.get(size, "delayed")
        delegation = board.get(size, "delegation")
        # Delayed commit alone keeps seeking volume-wide ("no significant
        # difference between Figure 5(a) and (b)").
        assert (
            delayed.mean_seek_distance > 0.5 * original.mean_seek_distance
        )
        # The delegation panels keep occasional *long* seeks (the spikes:
        # hops to a freshly delegated chunk elsewhere on the volume).
        assert delegation.max_seek_distance > 16 * 1024 * 1024

    # Panel (c), 32 KB: delegation "exposes few seek operations except
    # some long disk seeks shown as spikes" -- near-sequential dispatch
    # with collapsed amplitude.
    c = board.get("32KB", "delegation")
    a = board.get("32KB", "original")
    assert c.mean_seek_distance < 0.15 * a.mean_seek_distance, (
        f"32KB: delegation hop {c.mean_seek_distance:.0f} vs original "
        f"{a.mean_seek_distance:.0f}"
    )
    assert c.seek_fraction < 0.5
    assert c.mean_run_length > 2.0

    # Panel (f), 1 MB: delegation shows "less dense waves" -- the waves
    # remain (chunks turn over every 16 files) but their amplitude and
    # density drop relative to original.
    f = board.get("1024KB", "delegation")
    d = board.get("1024KB", "original")
    assert f.mean_seek_distance < 0.85 * d.mean_seek_distance
