"""Parallel sweep harness: fan figure sweeps across worker processes.

The paper's figures are all sweep-shaped -- many seeds x many
configurations x many client counts -- but the ``bench_fig*.py`` modules
run serially in one interpreter.  This harness turns a *sweep spec*
(figure x seeds x configs) into independent **cells**, fans the cells
across a ``ProcessPoolExecutor``, and records per-cell host-side
performance (wall time, simulated events/sec) into a machine-readable
``BENCH_sim.json`` -- the start of the perf trajectory tracked across
PRs.

Result cache
------------
Each cell's result is cached under a content hash of

    (code fingerprint, figure, cell config, seed)

where the code fingerprint is the git tree hash plus a digest of any
uncommitted changes (falling back to hashing ``src/`` when git is
unavailable).  Re-running a sweep therefore only executes cells whose
code or config changed; everything else is served from
``benchmarks/out/cache/``.  The simulator is deterministic (same seed,
same config => bit-identical run), which is what makes caching *sound*:
a cached cell is indistinguishable from a re-run one.

Usage
-----
::

    python -m repro bench --figure fig3 --seeds 8
    python benchmarks/harness.py --figure smoke --seeds 1
"""

from __future__ import annotations

import argparse
import hashlib
import json
import multiprocessing
import os
import subprocess
import sys
import time
import typing as _t
from concurrent.futures import ProcessPoolExecutor, as_completed

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if _REPO_ROOT not in sys.path:  # direct `python benchmarks/harness.py`
    sys.path.insert(0, os.path.join(_REPO_ROOT, "src"))

DEFAULT_CACHE_DIR = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "out", "cache"
)
DEFAULT_OUT = os.path.join(_REPO_ROOT, "BENCH_sim.json")

# ---------------------------------------------------------------------------
# Sweep specs
# ---------------------------------------------------------------------------

#: Workload factory specs: name -> (class name, constructor kwargs).
#: Kept as plain data so a cell config is JSON-serialisable (the cache
#: key hashes it) and picklable (the executor ships it to workers).
WORKLOAD_SPECS: _t.Dict[str, _t.Tuple[str, _t.Dict[str, _t.Any]]] = {
    "fileserver": ("FileserverWorkload", {"seed_files_per_client": 15}),
    "varmail": ("VarmailWorkload", {"seed_files_per_client": 15}),
    "webproxy": ("WebproxyWorkload", {"seed_files_per_client": 20}),
    "xcdn-32K": (
        "XcdnWorkload",
        {"file_size": 32 * 1024, "seed_files_per_client": 25},
    ),
    "xcdn-64K": (
        "XcdnWorkload",
        {"file_size": 64 * 1024, "seed_files_per_client": 15},
    ),
    "xcdn-1M": (
        "XcdnWorkload",
        {"file_size": 1024 * 1024, "seed_files_per_client": 8},
    ),
    # Lean per-personality footprint for the client-count scaling sweep:
    # at 10k clients the default seed corpus and thread count would
    # swamp the volume and the calendar before measurement starts.
    "xcdn-scale": (
        "XcdnWorkload",
        {
            "file_size": 32 * 1024,
            "seed_files_per_client": 2,
            "threads_per_client": 2,
        },
    ),
    "npb-bt": ("NpbBtIoWorkload", {}),
}

REDBUD_SYSTEMS = ["redbud-original", "redbud-delayed"]
ALL_SYSTEMS = ["pvfs2", "nfs3", "redbud-original", "redbud-delayed"]


def _cells(
    systems: _t.List[str],
    workloads: _t.List[str],
    clients: _t.List[int],
    duration: float = 1.0,
    warmup: float = 0.2,
    shards: int = 1,
    replication: str = "none",
) -> _t.List[_t.Dict[str, _t.Any]]:
    # ``shards`` and ``replication`` are part of every cell so the cache
    # key hashes them: sharded/replicated runs of the same (system,
    # workload, seed) can never collide in the result cache or
    # BENCH_sim.json.
    return [
        {
            "system": system,
            "workload": workload,
            "clients": n,
            "duration": duration,
            "warmup": warmup,
            "shards": shards,
            "replication": replication,
        }
        for system in systems
        for workload in workloads
        for n in clients
    ]


#: Figure name -> base cells (before the seed axis multiplies them).
#: Mirrors the shape of the corresponding ``bench_fig*.py`` module with
#: durations sized for sweeping, not for the paper's shape assertions.
FIGURE_SWEEPS: _t.Dict[str, _t.List[_t.Dict[str, _t.Any]]] = {
    "fig1": _cells(REDBUD_SYSTEMS, ["xcdn-32K", "xcdn-1M"], [7]),
    "fig3": _cells(
        ALL_SYSTEMS,
        [
            "fileserver",
            "varmail",
            "webproxy",
            "xcdn-32K",
            "xcdn-1M",
            "npb-bt",
        ],
        [7],
    ),
    "fig4": _cells(
        REDBUD_SYSTEMS, ["xcdn-32K", "xcdn-64K", "xcdn-1M"], [7]
    ),
    "fig5": _cells(REDBUD_SYSTEMS, ["xcdn-32K", "xcdn-1M"], [7]),
    "fig6": _cells(["redbud-delayed"], ["varmail", "xcdn-32K"], [4, 7]),
    "fig7": _cells(["redbud-delayed"], ["varmail"], [2, 4, 7]),
    "smoke": _cells(["redbud-delayed"], ["xcdn-32K"], [4], duration=0.5),
    # Replication-factor sweep: the same delayed-commit cells across
    # storage-group arrangements (unreplicated baseline, 3-way mirror,
    # 4+2 erasure).  Shows what the fan-out ack waits cost and what the
    # CURP fast path claws back.
    "replication": [
        cell
        for arrangement in ("none", "mirror3", "block4-2")
        for cell in _cells(
            ["redbud-delayed"],
            ["varmail", "xcdn-32K"],
            [4],
            replication=arrangement,
        )
    ],
}


def _scale_cell(
    clients: int,
    scheduler: str,
    processes: _t.Optional[int] = None,
    duration: float = 0.25,
    warmup: float = 0.05,
) -> _t.Dict[str, _t.Any]:
    """One client-count scaling cell (delayed commit, lean xcdn).

    ``delegation_chunk`` is shrunk so 10k clients' delegated chunks fit
    the volume; all scale cells share it so events/sec ratios compare
    like with like.
    """
    cell: _t.Dict[str, _t.Any] = {
        "system": "redbud-delayed",
        "workload": "xcdn-scale",
        "clients": clients,
        "duration": duration,
        "warmup": warmup,
        "shards": 1,
        "replication": "none",
        "scheduler": scheduler,
        "config": {"delegation_chunk": 1024 * 1024},
    }
    if processes is not None:
        cell["processes"] = processes
    return cell


#: The client-count scaling figure: the legacy layout (heap calendar,
#: one node per client) against aggregate clients on the calendar
#: queue.  The 10k legacy baseline is the pathological configuration
#: this sweep exists to retire -- it is slow once, then cached.
FIGURE_SWEEPS["clients"] = [
    _scale_cell(4, "heap"),
    _scale_cell(100, "heap"),
    _scale_cell(1000, "heap"),
    _scale_cell(10000, "heap", duration=0.12, warmup=0.03),
    _scale_cell(1000, "calendar", processes=8),
    _scale_cell(10000, "calendar", processes=16, duration=0.12,
                warmup=0.03),
]

#: CI-sized subset: one legacy baseline and one aggregate cell at 1000
#: clients (the 10k cells stay out of the smoke path).
FIGURE_SWEEPS["scale-smoke"] = [
    _scale_cell(1000, "heap"),
    _scale_cell(1000, "calendar", processes=8),
]


# ---------------------------------------------------------------------------
# Cache keys
# ---------------------------------------------------------------------------


def code_fingerprint(root: str = _REPO_ROOT) -> str:
    """Content hash of the code a cell's result depends on.

    Committed state is captured by the git *tree* hash (not the commit
    hash -- rebases and amended messages must not invalidate the cache),
    plus a digest of uncommitted modifications *and* of untracked files
    under ``src/`` and ``benchmarks/``.  Untracked coverage matters:
    a brand-new module (say a fresh ``repro.sim`` scheduler) is
    invisible to ``git diff HEAD``, and without it stale cells were
    served for code the cache key had never seen.  Falls back to
    hashing every Python file under ``src/`` and ``benchmarks/`` when
    git is unavailable.
    """
    try:
        tree = subprocess.run(
            ["git", "-C", root, "rev-parse", "HEAD^{tree}"],
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        dirty = subprocess.run(
            ["git", "-C", root, "diff", "HEAD", "--", "src", "benchmarks"],
            capture_output=True,
            text=True,
            check=True,
        ).stdout
        if dirty:
            tree += "+" + hashlib.sha256(dirty.encode()).hexdigest()[:16]
        untracked = subprocess.run(
            [
                "git", "-C", root, "ls-files", "--others",
                "--exclude-standard", "--", "src", "benchmarks",
            ],
            capture_output=True,
            text=True,
            check=True,
        ).stdout.split("\n")
        extra = hashlib.sha256()
        seen = False
        for rel in sorted(p for p in untracked if p):
            path = os.path.join(root, rel)
            try:
                with open(path, "rb") as fh:
                    content = fh.read()
            except OSError:
                continue
            seen = True
            extra.update(rel.encode())
            extra.update(content)
        if seen:
            tree += "~" + extra.hexdigest()[:16]
        return tree
    except (OSError, subprocess.CalledProcessError):
        digest = hashlib.sha256()
        for top in ("src", "benchmarks"):
            tree_root = os.path.join(root, top)
            if not os.path.isdir(tree_root):
                continue
            for dirpath, dirnames, filenames in sorted(
                os.walk(tree_root)
            ):
                dirnames[:] = sorted(
                    d for d in dirnames if d != "__pycache__"
                )
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        path = os.path.join(dirpath, name)
                        digest.update(
                            os.path.relpath(path, root).encode()
                        )
                        with open(path, "rb") as fh:
                            digest.update(fh.read())
        return "src-" + digest.hexdigest()


def cell_key(fingerprint: str, cell: _t.Dict[str, _t.Any]) -> str:
    """Stable cache key for one (code, config, seed) cell."""
    payload = json.dumps(
        {"code": fingerprint, "cell": cell}, sort_keys=True
    )
    return hashlib.sha256(payload.encode()).hexdigest()


class ResultCache:
    """One JSON file per completed cell under ``benchmarks/out/cache/``."""

    def __init__(self, directory: str = DEFAULT_CACHE_DIR) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.json")

    def get(self, key: str) -> _t.Optional[_t.Dict[str, _t.Any]]:
        try:
            with open(self._path(key)) as fh:
                return json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None

    def put(self, key: str, result: _t.Dict[str, _t.Any]) -> None:
        tmp = self._path(key) + ".tmp"
        with open(tmp, "w") as fh:
            json.dump(result, fh, indent=2, sort_keys=True)
        os.replace(tmp, self._path(key))


# ---------------------------------------------------------------------------
# Cell execution (runs inside worker processes)
# ---------------------------------------------------------------------------


def run_cell(cell: _t.Dict[str, _t.Any]) -> _t.Dict[str, _t.Any]:
    """Run one simulation cell; returns a JSON-friendly result record."""
    import repro.workloads as workloads
    from repro.fs import build_cluster

    cls_name, kwargs = WORKLOAD_SPECS[cell["workload"]]
    workload = getattr(workloads, cls_name)(**kwargs)
    t0 = time.perf_counter()
    extra = dict(cell.get("config") or {})
    if cell.get("scheduler"):
        extra["scheduler"] = cell["scheduler"]
    if cell.get("processes"):
        extra["client_processes"] = cell["processes"]
    cluster = build_cluster(
        cell["system"],
        num_clients=cell["clients"],
        seed=cell["seed"],
        shards=cell.get("shards", 1),
        replication=cell.get("replication", "none"),
        **extra,
    )
    result = cluster.run_workload(
        workload, duration=cell["duration"], warmup=cell["warmup"]
    )
    wall = time.perf_counter() - t0
    events = cluster.env.scheduled_events
    latency = result.latency()
    return {
        "cell": cell,
        "ops_completed": result.ops_completed,
        "ops_per_second": result.ops_per_second,
        "bytes_per_second": result.bytes_per_second,
        # Tail-latency columns (seconds, pooled over op types) so the
        # per-PR perf trajectory tracks tails, not just throughput.
        "latency_mean": latency.mean,
        "latency_p50": latency.p50,
        "latency_p99": latency.p99,
        "latency_p999": latency.p999,
        "events": events,
        "wall_time": wall,
        "events_per_second": events / wall if wall > 0 else 0.0,
    }


# ---------------------------------------------------------------------------
# The sweep driver
# ---------------------------------------------------------------------------


def sweep_cells(
    figure: str, seeds: int, base_seed: int = 11, shards: int = 1
) -> _t.List[_t.Dict[str, _t.Any]]:
    """Expand a figure's base cells along the seed axis.

    ``shards`` > 1 re-targets every redbud cell at a sharded metadata
    service (an extra sweep axis); pvfs2/nfs3 cells have no MDS to
    shard and keep ``shards=1``.
    """
    if figure not in FIGURE_SWEEPS:
        raise KeyError(
            f"unknown figure {figure!r}; choose from "
            f"{sorted(FIGURE_SWEEPS)}"
        )
    if seeds <= 0:
        raise ValueError(f"seeds must be positive, got {seeds}")
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    cells = []
    for cell in FIGURE_SWEEPS[figure]:
        if shards > 1 and cell["system"].startswith("redbud"):
            cell = dict(cell, shards=shards)
        for i in range(seeds):
            cells.append(dict(cell, seed=base_seed + i))
    return cells


def run_sweep(
    figure: str,
    seeds: int = 4,
    base_seed: int = 11,
    shards: int = 1,
    jobs: _t.Optional[int] = None,
    cache: _t.Optional[ResultCache] = None,
    use_cache: bool = True,
    progress: _t.Optional[_t.Callable[[str], None]] = None,
) -> _t.Dict[str, _t.Any]:
    """Run one figure sweep, parallel and incrementally cached.

    Returns the report later written to ``BENCH_sim.json``.
    """
    say = progress or (lambda _msg: None)
    cache = cache or ResultCache()
    fingerprint = code_fingerprint()
    cells = sweep_cells(figure, seeds, base_seed, shards)

    keyed = [(cell_key(fingerprint, cell), cell) for cell in cells]
    results: _t.Dict[str, _t.Dict[str, _t.Any]] = {}
    pending: _t.List[_t.Tuple[str, _t.Dict[str, _t.Any]]] = []
    for key, cell in keyed:
        hit = cache.get(key) if use_cache else None
        if hit is not None:
            hit = dict(hit, cached=True)
            results[key] = hit
        else:
            pending.append((key, cell))
    say(
        f"{figure}: {len(cells)} cells "
        f"({len(results)} cached, {len(pending)} to run)"
    )

    t0 = time.perf_counter()
    if pending:
        if jobs is None:
            jobs = os.cpu_count() or 1
        jobs = max(1, min(jobs, len(pending)))
        # Fork keeps the workers' module state (sys.path included)
        # identical to the parent's without re-importing.
        ctx = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(max_workers=jobs, mp_context=ctx) as pool:
            futures = {
                pool.submit(run_cell, cell): key for key, cell in pending
            }
            done = 0
            for future in as_completed(futures):
                key = futures[future]
                record = dict(future.result(), cached=False)
                cache.put(key, {k: v for k, v in record.items()
                                if k != "cached"})
                results[key] = record
                done += 1
                cell = record["cell"]
                say(
                    f"  [{done}/{len(pending)}] {cell['system']}"
                    f"/{cell['workload']} seed={cell['seed']}: "
                    f"{record['events_per_second']:,.0f} ev/s "
                    f"({record['wall_time']:.2f}s wall)"
                )
    sweep_wall = time.perf_counter() - t0

    ordered = [results[key] for key, _ in keyed]
    executed = [r for r in ordered if not r["cached"]]
    # Aggregate over every cell, cached included: a cached cell carries
    # the wall time and event count measured when it actually ran, so
    # the headline events/sec stays meaningful on a fully-cached rerun.
    total_events = sum(r["events"] for r in ordered)
    total_cell_wall = sum(r["wall_time"] for r in ordered)
    report = {
        "figure": figure,
        "seeds": seeds,
        "base_seed": base_seed,
        "shards": shards,
        "code": fingerprint,
        "generated_at": time.strftime(
            "%Y-%m-%dT%H:%M:%S", time.gmtime()
        ),
        "jobs": jobs,
        "totals": {
            "cells": len(ordered),
            "cached_cells": len(ordered) - len(executed),
            "executed_cells": len(executed),
            "sweep_wall_time": sweep_wall,
            "executed_wall_time": sum(
                r["wall_time"] for r in executed
            ),
            "cell_wall_time": total_cell_wall,
            "events": total_events,
            "events_per_second": (
                total_events / total_cell_wall if total_cell_wall else 0.0
            ),
        },
        "cells": ordered,
    }
    scaling = derive_scaling(ordered)
    if scaling:
        report["scaling"] = scaling
    return report


def derive_scaling(
    records: _t.List[_t.Dict[str, _t.Any]],
) -> _t.List[_t.Dict[str, _t.Any]]:
    """Per-client-count speedup of the aggregate/calendar configuration
    over the legacy layout (heap calendar, one node per client).

    Only meaningful for figures whose cells carry a ``scheduler`` key
    (the ``clients`` / ``scale-smoke`` sweeps); returns ``[]`` for the
    classic figures so their reports are unchanged.
    """
    by_kind: _t.Dict[
        _t.Tuple[int, str], _t.List[_t.Dict[str, _t.Any]]
    ] = {}
    for record in records:
        cell = record["cell"]
        scheduler = cell.get("scheduler")
        if not scheduler:
            continue
        kind = "aggregate" if cell.get("processes") else "legacy"
        by_kind.setdefault((cell["clients"], kind), []).append(record)

    def rate(group: _t.List[_t.Dict[str, _t.Any]]) -> float:
        events = sum(r["events"] for r in group)
        wall = sum(r["wall_time"] for r in group)
        return events / wall if wall else 0.0

    rows = []
    clients_seen = sorted({c for c, _ in by_kind})
    for clients in clients_seen:
        legacy = by_kind.get((clients, "legacy"))
        aggregate = by_kind.get((clients, "aggregate"))
        row: _t.Dict[str, _t.Any] = {"clients": clients}
        if legacy:
            row["legacy_events_per_second"] = rate(legacy)
        if aggregate:
            row["aggregate_events_per_second"] = rate(aggregate)
        if legacy and aggregate:
            base = row["legacy_events_per_second"]
            row["speedup"] = (
                row["aggregate_events_per_second"] / base if base else 0.0
            )
        rows.append(row)
    return rows


def write_report(report: _t.Dict[str, _t.Any], path: str) -> None:
    tmp = path + ".tmp"
    with open(tmp, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)


# ---------------------------------------------------------------------------
# CLI (also reachable as ``python -m repro bench``)
# ---------------------------------------------------------------------------


def add_bench_arguments(parser: argparse.ArgumentParser) -> None:
    """Shared between this module's CLI and ``repro bench``."""
    parser.add_argument(
        "--figure",
        choices=sorted(FIGURE_SWEEPS),
        default="smoke",
        help="which sweep to run (default %(default)s)",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        default=4,
        help="seeds per configuration (default %(default)s)",
    )
    parser.add_argument(
        "--base-seed",
        type=int,
        default=11,
        help="first seed of the seed axis (default %(default)s)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="metadata shards for redbud cells (extra sweep axis; "
        "default %(default)s, keyed into the result cache)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes (default: CPU count)",
    )
    parser.add_argument(
        "--out",
        default=DEFAULT_OUT,
        help="report path (default %(default)s)",
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help="cell result cache directory (default %(default)s)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore cached cells (still refreshes the cache)",
    )


def run_from_args(args: argparse.Namespace) -> int:
    report = run_sweep(
        figure=args.figure,
        seeds=args.seeds,
        base_seed=args.base_seed,
        shards=args.shards,
        jobs=args.jobs,
        cache=ResultCache(args.cache_dir),
        use_cache=not args.no_cache,
        progress=lambda msg: print(msg, file=sys.stderr),
    )
    write_report(report, args.out)
    totals = report["totals"]
    print(
        f"{report['figure']}: {totals['cells']} cells "
        f"({totals['cached_cells']} cached) in "
        f"{totals['sweep_wall_time']:.2f}s; "
        f"{totals['events_per_second']:,.0f} simulated events/s; "
        f"report -> {args.out}"
    )
    return 0


def main(argv: _t.Optional[_t.List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Parallel, cached benchmark sweep harness"
    )
    add_bench_arguments(parser)
    return run_from_args(parser.parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
