"""Figure 6: commit-thread count tracking the commit-queue length.

The paper traces both series over each run: "the number of commit
threads adaptively changes according to the commit queue length" --
varmail hovers at 1-5 threads with spikes to the maximum, fileserver and
xcdn pin the pool at the maximum, and NPB never needs more than one.

One cell per workload on the delayed-commit configuration; the report
prints each client-0 series (bucketed) plus the summary statistics, and
asserts the per-workload claims.
"""

import pytest

from benchmarks.common import ResultBoard, run_once
from repro.analysis import Table, dual_series, summarize_pool_samples
from repro.analysis.timeseries import TimeSeries
from repro.fs import ClusterConfig, RedbudCluster
from repro.workloads import (
    FileserverWorkload,
    NpbBtIoWorkload,
    VarmailWorkload,
    WebproxyWorkload,
    XcdnWorkload,
)

WORKLOADS = {
    "varmail": lambda: VarmailWorkload(seed_files_per_client=15),
    "fileserver": lambda: FileserverWorkload(seed_files_per_client=15),
    "webproxy": lambda: WebproxyWorkload(seed_files_per_client=20),
    "xcdn": lambda: XcdnWorkload(file_size=32 * 1024,
                                 seed_files_per_client=25),
    "npb-bt": lambda: NpbBtIoWorkload(),
}
MAX_THREADS = 9
DURATION = 3.0

_board = ResultBoard()


@pytest.fixture(scope="module")
def board():
    return _board


@pytest.mark.parametrize("workload_name", list(WORKLOADS))
def test_fig6_cell(benchmark, board, workload_name):
    def run():
        config = ClusterConfig.space_delegation_config(num_clients=7)
        cluster = RedbudCluster(config, seed=29)
        cluster.run_workload(
            WORKLOADS[workload_name](), duration=DURATION, warmup=0.3
        )
        return [client.thread_pool.samples for client in cluster.clients]

    samples_per_client = run_once(benchmark, run)
    board.put(workload_name, "samples", samples_per_client)


def test_fig6_report_and_shape(benchmark, board):
    run_once(benchmark, lambda: None)  # keep this report under --benchmark-only
    table = Table(
        ["workload", "mean threads", "max threads", "mean queue",
         "max queue", "time at max", "thread/queue corr"],
        title="Fig. 6 -- commit threads vs commit queue length (client 0)",
    )
    summaries = {}
    for name in WORKLOADS:
        samples = board.get(name, "samples")[0]
        summary = summarize_pool_samples(samples, MAX_THREADS)
        summaries[name] = summary
        table.add_row(
            name,
            summary.mean_threads,
            summary.max_threads,
            summary.mean_queue,
            summary.max_queue,
            f"{summary.fraction_at_max_threads:.0%}",
            summary.thread_queue_correlation,
        )
    table.print()

    # Render two panels the way the paper plots them: thread count (left
    # scale) against commit queue length (right scale) over time.
    for name in ("varmail", "xcdn"):
        samples = board.get(name, "samples")[0]
        print()
        print(
            dual_series(
                [s[0] for s in samples],
                [s[1] for s in samples],
                [s[2] for s in samples],
                a_label="commit threads",
                b_label="queue length",
                title=f"Fig. 6 panel -- {name} (client 0)",
                width=68,
                height=10,
            )
        )

    # Heavy-update workloads drive the pool well above one thread and
    # the thread count tracks the queue (positive correlation).
    for name in ("xcdn", "fileserver", "webproxy", "varmail"):
        s = summaries[name]
        assert s.max_threads > 1, f"{name} never grew its pool"
        assert s.thread_queue_correlation > 0.25, (
            f"{name}: threads do not track queue "
            f"(corr={s.thread_queue_correlation:.2f})"
        )

    # The bulk-update personalities reach the pool maximum...
    assert summaries["xcdn"].max_threads == MAX_THREADS
    assert summaries["fileserver"].max_threads >= MAX_THREADS - 2

    # ...while NPB, with its rare large writes, stays at a single
    # commit thread essentially always ("the commit thread number keeps
    # to only one in the NPB experiment").
    npb = summaries["npb-bt"]
    assert npb.mean_threads < 1.5
    assert npb.max_threads <= 2
