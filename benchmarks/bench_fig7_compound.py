"""Figure 7: compound degree x MDS server daemon threads.

The paper varies the number of MDS daemon threads (1, 8, 16) and the
fixed compound degree (1, 3, 6) under xcdn and reports per-client output
(MB/s): ~2.3 MB/s at one daemon rising to ~2.6 at eight; compounding
three requests adds ~0.2/0.2/0.1 MB/s for 1/8/16 daemons; degree six
matches degree three ("High compound degree more than three does little
help"); and sixteen daemons dip below eight ("probably caused by
multi-thread contention").

The absolute MB/s of the simulation differ from the testbed's; the
asserted shape is the ordering.
"""


import pytest

from benchmarks.common import ResultBoard, run_once
from repro.analysis import Table
from repro.fs import ClusterConfig, RedbudCluster
from repro.mds.server import MdsParameters
from repro.workloads import XcdnWorkload

DAEMONS = [1, 8, 16]
DEGREES = [1, 3, 6]
NUM_CLIENTS = 7
DURATION = 2.5

_board = ResultBoard()


@pytest.fixture(scope="module")
def board():
    return _board


@pytest.mark.parametrize("degree", DEGREES)
@pytest.mark.parametrize("daemons", DAEMONS)
def test_fig7_cell(benchmark, board, daemons, degree):
    def run():
        config = ClusterConfig.space_delegation_config(
            num_clients=NUM_CLIENTS,
            fixed_compound_degree=degree,
            mds=MdsParameters(num_daemons=daemons),
        )
        cluster = RedbudCluster(config, seed=37)
        workload = XcdnWorkload(
            file_size=32 * 1024, seed_files_per_client=25
        )
        result = cluster.run_workload(workload, duration=DURATION, warmup=0.3)
        per_client = result.bytes_per_second / NUM_CLIENTS / (1024 * 1024)
        return {
            "mbps": per_client,
            "rpcs": result.extras["commit_rpcs"],
            "mean_degree": result.extras["mean_compound_degree"],
        }

    cell = run_once(benchmark, run)
    board.put(f"daemons={daemons}", f"degree={degree}", cell)


def test_fig7_report_and_shape(benchmark, board):
    run_once(benchmark, lambda: None)  # keep this report under --benchmark-only
    table = Table(
        ["server daemons"]
        + [f"degree {d} (MB/s)" for d in DEGREES]
        + ["commit RPCs @1", "@3", "@6"],
        title="Fig. 7 -- per-client output vs compound degree and MDS daemons",
    )
    cells = {}
    for daemons in DAEMONS:
        row = [str(daemons)]
        for degree in DEGREES:
            cell = board.get(f"daemons={daemons}", f"degree={degree}")
            cells[(daemons, degree)] = cell
            row.append(cell["mbps"])
        for degree in DEGREES:
            row.append(cells[(daemons, degree)]["rpcs"])
        table.add_row(*row)
    table.print()

    mbps = {k: v["mbps"] for k, v in cells.items()}

    # Compounding (degree 3) reduces commit RPCs dramatically...
    for daemons in DAEMONS:
        assert (
            cells[(daemons, 3)]["rpcs"] < 0.6 * cells[(daemons, 1)]["rpcs"]
        )
    # ...and helps throughput most where the server is weakest: the
    # paper's +0.2 MB/s at one daemon.
    assert mbps[(1, 3)] > 1.03 * mbps[(1, 1)], (
        "compounding must help a 1-daemon MDS"
    )
    # It never hurts materially anywhere.
    for daemons in DAEMONS:
        assert mbps[(daemons, 3)] > 0.93 * mbps[(daemons, 1)], (
            f"degree 3 should not hurt at {daemons} daemons"
        )

    # Degree 6 is about the same as degree 3 ("High compound degree more
    # than three does little help").
    for daemons in DAEMONS:
        ratio = mbps[(daemons, 6)] / mbps[(daemons, 3)]
        assert 0.85 < ratio < 1.25, (
            f"degree 6 vs 3 at {daemons} daemons: {ratio:.2f}"
        )

    # At the uncompounded baseline -- where the MDS actually binds --
    # more daemons help up to 8, and 16 buys nothing (contention).
    # Once compounding removes the MDS from the critical path the
    # daemon count stops mattering, which is itself the paper's point.
    assert mbps[(8, 1)] > 1.05 * mbps[(1, 1)]
    assert mbps[(16, 1)] < 1.02 * mbps[(8, 1)]
