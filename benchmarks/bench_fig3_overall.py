"""Figure 3: overall performance of PVFS2, NFS3, original Redbud, and
Redbud with delayed commit across the paper's five benchmarks.

Each parametrised case runs one (workload, system) cell; the final test
assembles and prints the normalised table (normalised to original
Redbud, as in the paper) and asserts the shape claims:

- delayed commit >= 1.3x original on the small-file personalities
  (varmail, webproxy ~1.5x in the paper) and 2-3x on 32 KB xcdn;
- no degradation on 1 MB xcdn or NPB (conflict reads unharmed, §V.C);
- Redbud beats PVFS2 except (at most) on NPB;
- NFS3 beats original Redbud on 32 KB xcdn (where delayed commit closes
  the gap) but loses on large files.
"""

import pytest

from benchmarks.common import ResultBoard, run_once
from repro.analysis import Table
from repro.fs import build_cluster
from repro.workloads import (
    FileserverWorkload,
    NpbBtIoWorkload,
    VarmailWorkload,
    WebproxyWorkload,
    XcdnWorkload,
)

SYSTEMS = ["pvfs2", "nfs3", "redbud-original", "redbud-delayed"]

WORKLOADS = {
    "fileserver": lambda: FileserverWorkload(seed_files_per_client=15),
    "varmail": lambda: VarmailWorkload(seed_files_per_client=15),
    "webproxy": lambda: WebproxyWorkload(seed_files_per_client=20),
    "xcdn-32K": lambda: XcdnWorkload(
        file_size=32 * 1024, seed_files_per_client=25
    ),
    "xcdn-1M": lambda: XcdnWorkload(
        file_size=1024 * 1024, seed_files_per_client=8
    ),
    "npb-bt": lambda: NpbBtIoWorkload(),
}

DURATION = 2.5
NUM_CLIENTS = 7

_board = ResultBoard()


@pytest.fixture(scope="module")
def board():
    return _board


@pytest.mark.parametrize("workload_name", list(WORKLOADS))
@pytest.mark.parametrize("system", SYSTEMS)
def test_fig3_cell(benchmark, board, system, workload_name):
    def run():
        cluster = build_cluster(system, num_clients=NUM_CLIENTS, seed=11)
        workload = WORKLOADS[workload_name]()
        return cluster.run_workload(workload, duration=DURATION, warmup=0.3)

    result = run_once(benchmark, run)
    assert result.ops_completed > 0, f"{system}/{workload_name} did no work"
    board.put(workload_name, system, result)


def test_fig3_report_and_shape(benchmark, board):
    run_once(benchmark, lambda: None)  # keep this report under --benchmark-only
    table = Table(
        ["workload"] + SYSTEMS,
        title=(
            "Fig. 3 -- performance normalised to original Redbud "
            f"({NUM_CLIENTS} clients, {DURATION}s virtual)"
        ),
    )
    norm = {}
    for workload_name in WORKLOADS:
        # NPB's op granularity differs per system (strided records vs
        # collective writes), so normalise it by data throughput.
        if workload_name.startswith("npb"):
            metric = lambda r: r.bytes_per_second  # noqa: E731
        else:
            metric = lambda r: r.ops_per_second  # noqa: E731
        base = metric(board.get(workload_name, "redbud-original"))
        row = [workload_name]
        for system in SYSTEMS:
            value = metric(board.get(workload_name, system)) / base
            norm[(workload_name, system)] = value
            row.append(value)
        table.add_row(*row)
    table.print()

    d = lambda wl: norm[(wl, "redbud-delayed")]  # noqa: E731
    pvfs = lambda wl: norm[(wl, "pvfs2")]  # noqa: E731
    nfs = lambda wl: norm[(wl, "nfs3")]  # noqa: E731

    # Delayed commit gains on the small-file workloads (paper: ~1.5x on
    # varmail/webproxy, 2.6x on 32 KB xcdn).  Our webproxy lands near
    # parity rather than 1.5x -- a documented deviation (EXPERIMENTS.md):
    # at a 5:1 read bias the write savings are a small slice of the
    # flowlet in this model.
    assert d("varmail") > 1.15
    assert d("webproxy") > 0.85
    assert d("fileserver") > 1.3
    assert 1.8 < d("xcdn-32K") < 3.5

    # No degradation for large files or conflicted operations (§V.C).
    assert d("xcdn-1M") > 0.9
    assert d("npb-bt") > 0.9

    # Redbud outperforms PVFS2 except (at most) NPB, where collective
    # MPI-IO makes PVFS2 competitive.
    for wl in ("varmail", "webproxy", "xcdn-32K", "xcdn-1M", "fileserver"):
        assert pvfs(wl) < 1.0, f"PVFS2 should trail Redbud on {wl}"
    assert pvfs("npb-bt") > 0.7

    # NFS3: wins 32 KB xcdn against original Redbud with delayed commit
    # closing the gap (the paper's crossover); loses badly on the
    # large-file test (central NIC bottleneck).
    assert nfs("xcdn-32K") > 1.0
    assert d("xcdn-32K") > 0.7 * nfs("xcdn-32K")
    assert nfs("xcdn-1M") < 1.0
