"""Ablation benches for the design choices DESIGN.md calls out.

Not paper figures -- these probe the knobs around the Delayed Commit
Protocol:

- delegation chunk size (the paper fixes 16 MB; how sensitive is the
  merge ratio to it?);
- the cross-AG allocation strategy (``locality`` vs literal
  ``round-robin``, §V.A);
- the adaptive thread pool against fixed-size pools;
- the commit-queue capacity (backpressure) under overload.
"""

import pytest

from benchmarks.common import run_once
from repro.analysis import Table
from repro.core.thread_pool import ThreadPoolPolicy
from repro.fs import ClusterConfig, RedbudCluster
from repro.workloads import XcdnWorkload

DURATION = 2.0


def xcdn():
    return XcdnWorkload(file_size=32 * 1024, seed_files_per_client=20)


def run_config(config, seed=43, workload=None):
    cluster = RedbudCluster(config, seed=seed)
    return cluster.run_workload(
        workload or xcdn(), duration=DURATION, warmup=0.3
    )


def test_ablation_delegation_chunk_size(benchmark):
    """Merge ratio vs delegated chunk size (paper uses 16 MB)."""
    sizes = [1, 4, 16, 64]  # MB

    def run():
        out = {}
        for mb in sizes:
            config = ClusterConfig.space_delegation_config(
                num_clients=7, delegation_chunk=mb * 1024 * 1024
            )
            result = run_config(config)
            out[mb] = (
                result.extras["merge_ratio"],
                result.ops_per_second,
            )
        return out

    out = run_once(benchmark, run)
    table = Table(
        ["chunk (MB)", "merge ratio", "ops/s"],
        title="Ablation -- delegation chunk size (xcdn 32KB)",
    )
    for mb in sizes:
        table.add_row(mb, out[mb][0], out[mb][1])
    table.print()
    # Merging already works at small chunks; it must not degrade as the
    # chunk grows to the paper's 16 MB.
    assert out[16][0] > 1.5
    assert out[16][0] >= 0.7 * max(r for r, _ in out.values())


def test_ablation_ag_strategy(benchmark):
    """Cross-AG strategy shapes how far successive MDS allocations land.

    With per-file extent alignment, MDS-side allocation never merges at
    any strategy; the strategy's visible effect is the *placement
    spread* of a client's consecutive writes -- locality keeps them in
    one AG (short hops), rotation strategies scatter them volume-wide
    (the §IV.A motivation for delegation).
    """
    from repro.storage.blktrace import placement_analysis

    def run():
        out = {}
        for strategy in ("locality", "round-robin", "random"):
            config = ClusterConfig.delayed_commit(
                num_clients=7, ag_strategy=strategy
            )
            cluster = RedbudCluster(config, seed=43)
            result = cluster.run_workload(
                xcdn(), duration=DURATION, warmup=0.3
            )
            analysis = placement_analysis(
                cluster.blktrace,
                op="write",
                since=result.metrics.start_time or 0.0,
            )
            out[strategy] = (
                analysis.mean_seek_distance / 1e6,
                result.ops_per_second,
            )
        return out

    out = run_once(benchmark, run)
    table = Table(
        ["AG strategy", "mean write hop (MB)", "ops/s"],
        title="Ablation -- cross-AG allocation strategy (delayed, no delegation)",
    )
    for k, (hop, ops) in out.items():
        table.add_row(k, hop, ops)
    table.print()
    # Rotation strategies scatter a client's consecutive writes across
    # the volume; locality keeps the hops short.
    assert out["round-robin"][0] > 3 * out["locality"][0]
    assert out["random"][0] > 3 * out["locality"][0]


def test_ablation_thread_pool_adaptivity(benchmark):
    """The adaptive pool against pinned 1-thread and 9-thread pools."""

    def run():
        out = {}
        for name, policy in {
            "adaptive (1..9)": ThreadPoolPolicy(max_threads=9),
            "fixed 1": ThreadPoolPolicy(
                max_threads=1, min_threads=1, max_queue_len=450
            ),
            "fixed 9": ThreadPoolPolicy(
                max_threads=9, min_threads=9, max_queue_len=450
            ),
        }.items():
            config = ClusterConfig.space_delegation_config(
                num_clients=7, thread_pool=policy
            )
            result = run_config(config)
            out[name] = (
                result.ops_per_second,
                result.extras["commit_rpcs"],
                result.extras["ops_committed"],
            )
        return out

    out = run_once(benchmark, run)
    table = Table(
        ["pool", "ops/s", "commit RPCs", "ops committed"],
        title="Ablation -- commit thread pool sizing (xcdn 32KB)",
    )
    for k, (ops, rpcs, committed) in out.items():
        table.add_row(k, ops, rpcs, committed)
    table.print()
    # The adaptive pool keeps up with the workload: it must commit at
    # least as much as the single pinned thread and stay within reach
    # of the fully provisioned pool.
    assert out["adaptive (1..9)"][2] >= out["fixed 1"][2] * 0.9
    assert out["adaptive (1..9)"][0] >= out["fixed 9"][0] * 0.8


def test_ablation_commit_queue_backpressure(benchmark):
    """A tiny commit queue throttles the application but stays correct."""

    def run():
        out = {}
        for capacity in (8, 4096):
            config = ClusterConfig.space_delegation_config(
                num_clients=7, commit_queue_capacity=capacity
            )
            cluster = RedbudCluster(config, seed=43)
            result = cluster.run_workload(
                xcdn(), duration=DURATION, warmup=0.3
            )
            committed = result.extras["ops_committed"]
            out[capacity] = (result.ops_per_second, committed)
        return out

    out = run_once(benchmark, run)
    table = Table(
        ["queue capacity", "ops/s", "ops committed"],
        title="Ablation -- commit queue capacity (backpressure)",
    )
    for k, v in out.items():
        table.add_row(k, v[0], v[1])
    table.print()
    # Both configurations make forward progress; commits flow either way.
    assert out[8][1] > 0
    assert out[4096][1] > 0
