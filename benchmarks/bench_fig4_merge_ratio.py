"""Figure 4: I/O merge ratio under the three Redbud configurations.

"Figure 4 shows that the original Redbud has no I/O merge, while delayed
commit brings the I/O merges, and space delegation improves the I/O
merge ratio 2.8 to 5.9 times."

One cell per (file size, configuration); the report asserts:

- original Redbud's ratio stays ~1 (no merging: order kept by blocked
  application threads, queue depth ~1);
- delayed commit alone already merges;
- space delegation multiplies the delayed-commit ratio by >= 1.8x
  (paper: 2.8-5.9x against delayed commit *without* delegation);
- larger files reach higher ratios ("Larger files have a higher I/O
  merge ratio").
"""

import pytest

from benchmarks.common import ResultBoard, run_once
from repro.analysis import Table
from repro.fs import ClusterConfig, RedbudCluster
from repro.workloads import XcdnWorkload

CONFIGS = {
    "original": ClusterConfig.original_redbud,
    "delayed": ClusterConfig.delayed_commit,
    "delegation": ClusterConfig.space_delegation_config,
}
FILE_SIZES = [32 * 1024, 64 * 1024, 1024 * 1024]
DURATION = 2.5

_board = ResultBoard()


@pytest.fixture(scope="module")
def board():
    return _board


def size_label(size):
    return f"{size // 1024}KB"


@pytest.mark.parametrize("file_size", FILE_SIZES, ids=size_label)
@pytest.mark.parametrize("config_name", list(CONFIGS))
def test_fig4_cell(benchmark, board, config_name, file_size):
    def run():
        cluster = RedbudCluster(
            CONFIGS[config_name](num_clients=7), seed=17
        )
        workload = XcdnWorkload(
            file_size=file_size,
            seed_files_per_client=max(6, (256 * 1024) // file_size),
            threads_per_client=8,
        )
        result = cluster.run_workload(workload, duration=DURATION, warmup=0.3)
        return result.extras["merge_stats"]

    stats = run_once(benchmark, run)
    assert stats.dispatched > 0
    board.put(size_label(file_size), config_name, stats)


def test_fig4_report_and_shape(benchmark, board):
    run_once(benchmark, lambda: None)  # keep this report under --benchmark-only
    table = Table(
        ["file size", "original", "delayed", "delegation",
         "delegation/delayed"],
        title="Fig. 4 -- I/O merge ratio (submitted requests per disk op)",
    )
    for size in FILE_SIZES:
        label = size_label(size)
        ratios = {
            name: board.get(label, name).merge_ratio for name in CONFIGS
        }
        table.add_row(
            label,
            ratios["original"],
            ratios["delayed"],
            ratios["delegation"],
            ratios["delegation"] / ratios["delayed"],
        )
    table.print()

    for size in FILE_SIZES:
        label = size_label(size)
        original = board.get(label, "original").merge_ratio
        delayed = board.get(label, "delayed").merge_ratio
        delegation = board.get(label, "delegation").merge_ratio
        # Original Redbud: essentially no merging.
        assert original < 1.35, f"{label}: original should not merge"
        # Delayed commit introduces merging.
        assert delayed > 1.3 * original
        # Absolute merging under delegation at every size.
        assert delegation > 2.0

    # Space delegation multiplies the small-file merge ratio (paper:
    # 2.8-5.9x over delayed commit).  At 1 MB both configurations
    # saturate on intra-file merging (the block-layer request-size cap),
    # so the multiplier applies to the small-file points -- see
    # EXPERIMENTS.md for this documented deviation.
    for size in (32 * 1024, 64 * 1024):
        label = size_label(size)
        delayed = board.get(label, "delayed").merge_ratio
        delegation = board.get(label, "delegation").merge_ratio
        assert delegation > 1.5 * delayed, (
            f"{label}: delegation ratio {delegation:.2f} vs delayed "
            f"{delayed:.2f}"
        )
    big = board.get("1024KB", "delegation").merge_ratio
    assert big > 0.9 * board.get("1024KB", "delayed").merge_ratio

    # "Larger files have a higher I/O merge ratio."
    assert (
        board.get("1024KB", "delayed").merge_ratio
        > board.get("32KB", "delayed").merge_ratio
    )
