"""Shared helpers for the benchmark harness.

Every ``bench_fig*.py`` module reproduces one table or figure of the
paper: it runs the simulation, prints the same rows/series the paper
reports (via :class:`repro.analysis.Table`), and asserts the *shape*
claims from DESIGN.md §4.  ``pytest-benchmark`` wraps each simulation in
``pedantic(rounds=1)`` -- the interesting output is the virtual-time
measurement, not host wall time, so repetition adds nothing.
"""

from __future__ import annotations

import typing as _t

BENCH_KW = dict(rounds=1, iterations=1, warmup_rounds=0)


def run_once(benchmark, fn: _t.Callable[[], _t.Any]) -> _t.Any:
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, **BENCH_KW)


class ResultBoard:
    """Accumulates per-cell results across parametrised bench cases.

    The last test of a module calls :meth:`render` to print the
    assembled paper table.
    """

    def __init__(self) -> None:
        self.cells: _t.Dict[_t.Tuple[str, str], _t.Any] = {}

    def put(self, row: str, col: str, value: _t.Any) -> None:
        self.cells[(row, col)] = value

    def get(self, row: str, col: str) -> _t.Any:
        return self.cells[(row, col)]

    def has(self, row: str, col: str) -> bool:
        return (row, col) in self.cells

    def rows(self) -> _t.List[str]:
        seen: _t.List[str] = []
        for row, _ in self.cells:
            if row not in seen:
                seen.append(row)
        return seen

    def cols(self) -> _t.List[str]:
        seen: _t.List[str] = []
        for _, col in self.cells:
            if col not in seen:
                seen.append(col)
        return seen
